(* A synthetic stand-in for the iris dataset the case study uses: 150
   samples, 4 features, 3 classes of 50.  Class means and spreads
   approximate the classic measurements (setosa / versicolor /
   virginica), sampled with a deterministic Box-Muller generator so
   every run sees the same data. *)

type t = { features : float array array; labels : int array }

let classes = 3
let samples_per_class = 50
let features_per_sample = 4
let total_samples = classes * samples_per_class

(* (mean, stddev) per feature, per class: sepal length/width, petal
   length/width. *)
let class_params =
  [|
    [| (5.01, 0.35); (3.43, 0.38); (1.46, 0.17); (0.25, 0.11) |];
    [| (5.94, 0.52); (2.77, 0.31); (4.26, 0.47); (1.33, 0.20) |];
    [| (6.59, 0.64); (2.97, 0.32); (5.55, 0.55); (2.03, 0.27) |];
  |]

let gaussian rng ~mean ~std =
  let u1 = max 1e-12 (Random.State.float rng 1.0) in
  let u2 = Random.State.float rng 1.0 in
  mean +. (std *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let generate ?(seed = 1936) () =
  let rng = Random.State.make [| seed |] in
  let features =
    Array.init total_samples (fun i ->
        let cls = i / samples_per_class in
        Array.init features_per_sample (fun f ->
            let mean, std = class_params.(cls).(f) in
            gaussian rng ~mean ~std))
  in
  let labels = Array.init total_samples (fun i -> i / samples_per_class) in
  { features; labels }
