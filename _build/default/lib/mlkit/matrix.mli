(** A dense row-major matrix in simulated memory — the Armadillo
    stand-in of the KNN case study.  A matrix is a compound object: a
    small header (data pointer + shape) and a separate data array, both
    in the matrix's region.  With a pool region the header's data
    pointer is a persistent pointer, so element accesses exercise the
    translation machinery. *)

module Runtime = Nvml_runtime.Runtime
module Ptr = Nvml_core.Ptr

type t

val header_size : int
val create : Runtime.t -> Runtime.region -> rows:int -> cols:int -> t
val header : t -> Ptr.t
val attach : Runtime.t -> Ptr.t -> t
val rows : t -> int
val cols : t -> int

val data : t -> Ptr.t
(** Load the data pointer from the header — where a persistent matrix's
    pointer is materialized for reuse. *)

val get : t -> int -> int -> float
(** Element access through the header (re-fetches the data pointer,
    like generic library code holding only the object). *)

val set : t -> int -> int -> float -> unit

val get_via : t -> data:Ptr.t -> int -> int -> float
(** Element access through a pre-materialized data pointer — what a
    kernel's inner loop does after hoisting the load. *)

val set_via : t -> data:Ptr.t -> int -> int -> float -> unit
val of_arrays : Runtime.t -> Runtime.region -> float array array -> t
val to_arrays : t -> float array array
val fill : t -> float -> unit
