(** A synthetic stand-in for the iris dataset of the case study: 150
    samples, 4 features, 3 balanced classes whose means and spreads
    approximate the classic measurements, generated deterministically. *)

type t = { features : float array array; labels : int array }

val classes : int
val samples_per_class : int
val features_per_sample : int
val total_samples : int

val generate : ?seed:int -> unit -> t
