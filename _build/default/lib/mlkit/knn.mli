(** The KNN case study (Section VII-E): exact k-nearest-neighbours over
    four matrices — input samples, an internal distance matrix, and two
    output matrices (neighbour indices and distances) — each placeable
    in DRAM or NVM. *)

module Runtime = Nvml_runtime.Runtime

type placement = {
  input : Runtime.region;
  internal : Runtime.region;
  neighbors : Runtime.region;
  distances : Runtime.region;
}

val all_dram : placement

val paper_placement : pool:int -> placement
(** The paper's configuration: everything persistent except the input. *)

val all_placements : pool:int -> placement list
(** All 16 DRAM/NVM combinations — the reason an explicit-pointer port
    would need 16 code versions. *)

type t = {
  input : Matrix.t;
  internal : Matrix.t;
  neighbors : Matrix.t;
  distances : Matrix.t;
  k : int;
}

val create : Runtime.t -> placement -> n:int -> dims:int -> k:int -> t
val load_input : t -> float array array -> unit

val run : Runtime.t -> t -> unit
(** All-pairs distances, then the k nearest per row (excluding self)
    into the output matrices. *)

val accuracy : t -> int array -> float
(** Leave-one-out majority-vote accuracy against true labels. *)
