(* A dense row-major matrix in simulated memory — the Armadillo
   stand-in of the KNN case study.  A matrix is a compound object: a
   small header (data pointer plus shape metadata) and a separate data
   array, both in the matrix's region.  When the region is a pool, the
   header's data pointer is a persistent pointer and every element
   access dereferences it — the access pattern whose translation cost
   the case study measures. *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr

(* Header layout. *)
let h_data = 0
let h_rows = 8
let h_cols = 16
let h_row_major = 24
let header_size = 32

type t = { rt : Runtime.t; region : Runtime.region; header : Ptr.t }

let s_hdr = Site.make "matrix.header"
let s_elem = Site.make "matrix.element"

let create rt region ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: empty shape";
  let header = Runtime.alloc_in rt region header_size in
  let data = Runtime.alloc_in rt region (rows * cols * 8) in
  Runtime.store_ptr rt ~site:s_hdr header ~off:h_data data;
  Runtime.store_word rt ~site:s_hdr header ~off:h_rows (Int64.of_int rows);
  Runtime.store_word rt ~site:s_hdr header ~off:h_cols (Int64.of_int cols);
  Runtime.store_word rt ~site:s_hdr header ~off:h_row_major 1L;
  { rt; region; header }

let header t = t.header
let attach rt header =
  { rt; region = Runtime.region_of_ptr rt header; header }

let rows t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_rows)

let cols t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_cols)

(* Load the data pointer out of the header — the point where a
   persistent matrix's pointer is materialized for reuse. *)
let data t = Runtime.load_ptr t.rt ~site:s_hdr t.header ~off:h_data

let index t r c = ((r * cols t) + c) * 8

(* Element access through the header (loads the data pointer each call,
   like generic library code that only holds the object). *)
let get t r c =
  let d = data t in
  Runtime.load_f64 t.rt ~site:s_elem d ~off:(index t r c)

let set t r c v =
  let d = data t in
  Runtime.store_f64 t.rt ~site:s_elem d ~off:(index t r c) v

(* Element access through a pre-materialized data pointer — what a
   kernel's inner loop does after hoisting the load. *)
let get_via t ~data r c =
  Runtime.load_f64 t.rt ~site:s_elem data ~off:(index t r c)

let set_via t ~data r c v =
  Runtime.store_f64 t.rt ~site:s_elem data ~off:(index t r c) v

let of_arrays rt region (a : float array array) =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Matrix.of_arrays: empty";
  let cols = Array.length a.(0) in
  let m = create rt region ~rows ~cols in
  let d = data m in
  Array.iteri
    (fun r row ->
      if Array.length row <> cols then
        invalid_arg "Matrix.of_arrays: ragged rows";
      Array.iteri (fun c v -> set_via m ~data:d r c v) row)
    a;
  m

let to_arrays t =
  let d = data t in
  Array.init (rows t) (fun r ->
      Array.init (cols t) (fun c -> get_via t ~data:d r c))

let fill t v =
  let d = data t in
  for r = 0 to rows t - 1 do
    for c = 0 to cols t - 1 do
      set_via t ~data:d r c v
    done
  done
