(* The KNN case study (Section VII-E): exact k-nearest-neighbours over
   four matrices — the input samples, an internal distance matrix and
   two output matrices (neighbour indices and neighbour distances).
   Any combination of the four may be placed in DRAM or NVM; the case
   study persists all but the input. *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site

let s_knn = Site.make "knn.kernel"

(* The four matrices of the algorithm and their placements. *)
type placement = {
  input : Runtime.region;
  internal : Runtime.region;
  neighbors : Runtime.region;
  distances : Runtime.region;
}

let all_dram =
  {
    input = Runtime.Dram_region;
    internal = Runtime.Dram_region;
    neighbors = Runtime.Dram_region;
    distances = Runtime.Dram_region;
  }

(* The paper's configuration: everything persistent except the input. *)
let paper_placement ~pool =
  {
    input = Runtime.Dram_region;
    internal = Runtime.Pool_region pool;
    neighbors = Runtime.Pool_region pool;
    distances = Runtime.Pool_region pool;
  }

(* All 16 DRAM/NVM combinations of the four matrices — the reason the
   explicit model would need 16 code versions. *)
let all_placements ~pool =
  let r = function false -> Runtime.Dram_region | true -> Runtime.Pool_region pool in
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b ->
          List.concat_map
            (fun c ->
              List.map
                (fun d ->
                  { input = r a; internal = r b; neighbors = r c; distances = r d })
                [ false; true ])
            [ false; true ])
        [ false; true ])
    [ false; true ]

type t = {
  input : Matrix.t;
  internal : Matrix.t;
  neighbors : Matrix.t;
  distances : Matrix.t;
  k : int;
}

(* Build the working set for [n] samples of [dims] features. *)
let create rt (placement : placement) ~n ~dims ~k =
  {
    input = Matrix.create rt placement.input ~rows:n ~cols:dims;
    internal = Matrix.create rt placement.internal ~rows:n ~cols:n;
    neighbors = Matrix.create rt placement.neighbors ~rows:n ~cols:k;
    distances = Matrix.create rt placement.distances ~rows:n ~cols:k;
    k;
  }

let load_input t (features : float array array) =
  let d = Matrix.data t.input in
  Array.iteri
    (fun r row -> Array.iteri (fun c v -> Matrix.set_via t.input ~data:d r c v) row)
    features

(* The kernel: all-pairs distances into the internal matrix, then k
   smallest per row into the output matrices.  Data pointers are
   materialized once per phase, as a compiled kernel would hoist them. *)
let run rt t =
  let n = Matrix.rows t.input in
  let dims = Matrix.cols t.input in
  let din = Matrix.data t.input in
  let dint = Matrix.data t.internal in
  (* Phase 1: pairwise Euclidean distances. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for f = 0 to dims - 1 do
        let a = Matrix.get_via t.input ~data:din i f in
        let b = Matrix.get_via t.input ~data:din j f in
        (* subsd + mulsd + addsd, ~3-4 cycle latency each *)
        Runtime.instr rt 10;
        let d = a -. b in
        acc := !acc +. (d *. d)
      done;
      (* sqrtsd: ~20-cycle latency on the modeled core *)
      Runtime.instr rt 20;
      Matrix.set_via t.internal ~data:dint i j (sqrt !acc)
    done
  done;
  (* Phase 2: selection of the k nearest (excluding self) per row. *)
  let dnb = Matrix.data t.neighbors in
  let dds = Matrix.data t.distances in
  for i = 0 to n - 1 do
    let taken = Array.make n false in
    taken.(i) <- true;
    for slot = 0 to t.k - 1 do
      let best = ref (-1) in
      let best_d = ref infinity in
      for j = 0 to n - 1 do
        if not taken.(j) then begin
          let d = Matrix.get_via t.internal ~data:dint i j in
          Runtime.instr rt 1;
          if Runtime.branch rt ~site:s_knn (d < !best_d) then begin
            best_d := d;
            best := j
          end
        end
      done;
      taken.(!best) <- true;
      Matrix.set_via t.neighbors ~data:dnb i slot
        (Int64.to_float (Int64.of_int !best));
      Matrix.set_via t.distances ~data:dds i slot !best_d
    done
  done

(* Majority-vote classification accuracy given the true labels —
   leave-one-out over the dataset itself. *)
let accuracy t (labels : int array) =
  let n = Matrix.rows t.neighbors in
  let dnb = Matrix.data t.neighbors in
  let correct = ref 0 in
  for i = 0 to n - 1 do
    let votes = Hashtbl.create 8 in
    for slot = 0 to t.k - 1 do
      let j = int_of_float (Matrix.get_via t.neighbors ~data:dnb i slot) in
      let l = labels.(j) in
      Hashtbl.replace votes l (1 + Option.value ~default:0 (Hashtbl.find_opt votes l))
    done;
    let winner, _ =
      Hashtbl.fold
        (fun l c (bl, bc) -> if c > bc then (l, c) else (bl, bc))
        votes (-1, 0)
    in
    if winner = labels.(i) then incr correct
  done;
  float_of_int !correct /. float_of_int n
