lib/mlkit/iris.mli:
