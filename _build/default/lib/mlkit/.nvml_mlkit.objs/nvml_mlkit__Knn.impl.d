lib/mlkit/knn.ml: Array Hashtbl Int64 List Matrix Nvml_runtime Option
