lib/mlkit/knn.mli: Matrix Nvml_runtime
