lib/mlkit/matrix.mli: Nvml_core Nvml_runtime
