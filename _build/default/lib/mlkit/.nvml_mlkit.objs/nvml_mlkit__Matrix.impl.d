lib/mlkit/matrix.ml: Array Int64 Nvml_core Nvml_runtime
