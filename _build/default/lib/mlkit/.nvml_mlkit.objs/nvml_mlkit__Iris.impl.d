lib/mlkit/iris.ml: Array Float Random
