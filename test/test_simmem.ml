(* Tests for the simulated memory substrate: layout constants, physical
   frames, the page table, word/byte accessors, and crash semantics. *)

module Layout = Nvml_simmem.Layout
module Physmem = Nvml_simmem.Physmem
module Vspace = Nvml_simmem.Vspace
module Mem = Nvml_simmem.Mem

let check = Alcotest.check
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- layout ---------------------------------------------------------- *)

let test_layout_regions () =
  check_bool "VA 0x1000 is DRAM" false (Layout.is_nvm_va 0x1000L);
  check_bool "NVM base is NVM" true (Layout.is_nvm_va Layout.nvm_va_base);
  check_bool "last DRAM VA" false
    (Layout.is_nvm_va (Int64.sub Layout.nvm_va_base 1L));
  check_bool "last NVM VA" true
    (Layout.is_nvm_va (Int64.sub Layout.va_limit 1L))

let test_layout_constants () =
  check_i64 "NVM half starts at 2^47" (Int64.shift_left 1L 47)
    Layout.nvm_va_base;
  check_i64 "VA limit is 2^48" (Int64.shift_left 1L 48) Layout.va_limit;
  check_int "page is 4 KiB" 4096 Layout.page_size;
  check_int "512 words per page" 512 Layout.words_per_page

let test_layout_pages () =
  check_int "page of 0x2345" 2 (Layout.page_of_va 0x2345L);
  check_int "offset of 0x2345" 0x345 (Layout.page_offset_of_va 0x2345L);
  check_i64 "va of page 2" 0x2000L (Layout.va_of_page 2);
  check_int "pages_of_bytes rounds up" 2 (Layout.pages_of_bytes 4097);
  check_int "pages_of_bytes exact" 1 (Layout.pages_of_bytes 4096);
  check_bool "aligned" true (Layout.is_word_aligned 0x10L);
  check_bool "unaligned" false (Layout.is_word_aligned 0x11L)

(* --- physical memory -------------------------------------------------- *)

let test_phys_regions () =
  let pm = Physmem.create () in
  let d = Physmem.alloc_frame pm Layout.Dram in
  let n = Physmem.alloc_frame pm Layout.Nvm in
  check_bool "dram frame classified" true
    (Layout.equal_region (Physmem.region_of_frame d) Layout.Dram);
  check_bool "nvm frame classified" true
    (Layout.equal_region (Physmem.region_of_frame n) Layout.Nvm)

let test_phys_rw () =
  let pm = Physmem.create () in
  let f = Physmem.alloc_frame pm Layout.Dram in
  Physmem.write_word pm ~frame:f ~word_index:7 42L;
  check_i64 "read back" 42L (Physmem.read_word pm ~frame:f ~word_index:7);
  check_i64 "other words zero" 0L (Physmem.read_word pm ~frame:f ~word_index:8)

let test_phys_crash () =
  let pm = Physmem.create () in
  let d = Physmem.alloc_frame pm Layout.Dram in
  let n = Physmem.alloc_frame pm Layout.Nvm in
  Physmem.write_word pm ~frame:d ~word_index:0 1L;
  Physmem.write_word pm ~frame:n ~word_index:0 2L;
  Physmem.crash pm;
  check_bool "dram frame gone" false (Physmem.frame_exists pm d);
  check_bool "nvm frame survives" true (Physmem.frame_exists pm n);
  check_i64 "nvm content survives" 2L
    (Physmem.read_word pm ~frame:n ~word_index:0)

let test_phys_crash_recycles_dram_frames () =
  let pm = Physmem.create () in
  let d1 = Physmem.alloc_frame pm Layout.Dram in
  let d2 = Physmem.alloc_frame pm Layout.Dram in
  let n1 = Physmem.alloc_frame pm Layout.Nvm in
  Physmem.write_word pm ~frame:n1 ~word_index:0 7L;
  Physmem.crash pm;
  (* DRAM contents are gone, so their frame IDs must be reusable: a
     crash/recover loop must not leak the DRAM frame namespace. *)
  check_int "first DRAM frame recycled" d1 (Physmem.alloc_frame pm Layout.Dram);
  check_int "second DRAM frame recycled" d2 (Physmem.alloc_frame pm Layout.Dram);
  (* NVM frames survive the crash, so that counter must NOT rewind. *)
  let n2 = Physmem.alloc_frame pm Layout.Nvm in
  check_bool "NVM counter advances past survivor" true (n2 > n1);
  check_bool "survivor still exists" true (Physmem.frame_exists pm n1)

(* --- virtual space ---------------------------------------------------- *)

let test_vspace_reserve_halves () =
  let vs = Vspace.create () in
  let d = Vspace.reserve vs Layout.Dram 8192 in
  let n = Vspace.reserve vs Layout.Nvm 8192 in
  check_bool "dram reservation in dram half" false (Layout.is_nvm_va d);
  check_bool "nvm reservation in nvm half" true (Layout.is_nvm_va n);
  let d2 = Vspace.reserve vs Layout.Dram 4096 in
  check_bool "reservations do not overlap" true (d2 >= Int64.add d 8192L)

let test_vspace_map_translate () =
  let vs = Vspace.create () in
  Vspace.map_page vs ~vpage:5 ~frame:99;
  (match Vspace.translate vs 0x5123L with
  | Some (frame, off) ->
      check_int "frame" 99 frame;
      check_int "offset" 0x123 off
  | None -> Alcotest.fail "expected mapping");
  check_bool "unmapped faults" true (Vspace.translate vs 0x9000L = None)

let test_vspace_translate_pa () =
  let vs = Vspace.create () in
  Vspace.map_page vs ~vpage:5 ~frame:99;
  check_int "packed physical address" ((99 lsl Layout.page_shift) lor 0x123)
    (Vspace.translate_pa vs 0x5123L);
  check_int "unmapped packs to -1" (-1) (Vspace.translate_pa vs 0x9000L);
  (* The direct-mapped translation cache must be coherent with unmap. *)
  ignore (Vspace.translate_pa vs 0x5123L);
  Vspace.unmap_range vs ~base:0x5000L ~pages:1;
  check_int "stale cache entry invalidated" (-1) (Vspace.translate_pa vs 0x5123L)

let test_vspace_fault () =
  let vs = Vspace.create () in
  Alcotest.check_raises "fault on unmapped" (Vspace.Fault 0x4000L) (fun () ->
      ignore (Vspace.translate_exn vs 0x4000L))

let test_vspace_unmap () =
  let vs = Vspace.create () in
  Vspace.map_range vs ~base:0x10000L ~frames:[ 1; 2; 3 ];
  check_bool "mapped" true (Vspace.is_mapped vs 0x12000L);
  Vspace.unmap_range vs ~base:0x10000L ~pages:3;
  check_bool "unmapped" false (Vspace.is_mapped vs 0x12000L)

(* --- combined memory --------------------------------------------------- *)

let test_mem_words () =
  let m = Mem.create () in
  let base = Mem.map_fresh m Layout.Dram 4096 in
  Mem.write_word m base 123L;
  Mem.write_word m (Int64.add base 8L) (-1L);
  check_i64 "word 0" 123L (Mem.read_word m base);
  check_i64 "word 1" (-1L) (Mem.read_word m (Int64.add base 8L))

let test_mem_unaligned () =
  let m = Mem.create () in
  let base = Mem.map_fresh m Layout.Dram 4096 in
  Alcotest.check_raises "unaligned word access"
    (Mem.Unaligned (Int64.add base 3L)) (fun () ->
      ignore (Mem.read_word m (Int64.add base 3L)))

let test_mem_bytes () =
  let m = Mem.create () in
  let base = Mem.map_fresh m Layout.Dram 4096 in
  Mem.write_byte m (Int64.add base 3L) 0xAB;
  check_int "byte back" 0xAB (Mem.read_byte m (Int64.add base 3L));
  check_int "neighbour untouched" 0 (Mem.read_byte m (Int64.add base 2L));
  (* byte 3 of the word = bits 24..31 *)
  check_i64 "word view" (Int64.shift_left 0xABL 24) (Mem.read_word m base)

let test_mem_strings () =
  let m = Mem.create () in
  let base = Mem.map_fresh m Layout.Dram 4096 in
  Mem.write_string m (Int64.add base 16L) "hello!!!";
  check Alcotest.string "string back" "hello!!!"
    (Mem.read_string m (Int64.add base 16L) 8)

let test_mem_strings_ragged () =
  (* The whole-word fast path must keep byte semantics at every
     alignment and length, including spans that cross the word-aligned
     head/tail boundary. *)
  let m = Mem.create () in
  let base = Mem.map_fresh m Layout.Dram 8192 in
  let payload = "abcdefghijklmnopqrstuvwxyz0123456789" in
  for off = 0 to 7 do
    for len = 0 to 19 do
      let s = String.sub payload 0 len in
      let va = Int64.add base (Int64.of_int ((off * 256) + off)) in
      Mem.write_string m va s;
      check Alcotest.string
        (Printf.sprintf "roundtrip off=%d len=%d" off len)
        s (Mem.read_string m va len);
      (* The same bytes must be visible through the byte accessors. *)
      String.iteri
        (fun i c ->
          check_int
            (Printf.sprintf "byte view off=%d i=%d" off i)
            (Char.code c)
            (Mem.read_byte m (Int64.add va (Int64.of_int i))))
        s
    done
  done

let test_mem_string_neighbours_untouched () =
  let m = Mem.create () in
  let base = Mem.map_fresh m Layout.Dram 4096 in
  (* Fill a region with a sentinel pattern byte-wise, overwrite the
     middle with the fast path, and check the fringes survived. *)
  for i = 0 to 63 do
    Mem.write_byte m (Int64.add base (Int64.of_int i)) 0xEE
  done;
  let va = Int64.add base 13L in
  Mem.write_string m va "0123456789ABCDEF!";
  for i = 0 to 12 do
    check_int (Printf.sprintf "prefix byte %d" i) 0xEE
      (Mem.read_byte m (Int64.add base (Int64.of_int i)))
  done;
  for i = 30 to 63 do
    check_int (Printf.sprintf "suffix byte %d" i) 0xEE
      (Mem.read_byte m (Int64.add base (Int64.of_int i)))
  done;
  check Alcotest.string "middle" "0123456789ABCDEF!" (Mem.read_string m va 17)

let test_mem_floats () =
  let m = Mem.create () in
  let base = Mem.map_fresh m Layout.Nvm 4096 in
  Mem.write_f64 m base 3.25;
  check (Alcotest.float 0.0) "float back" 3.25 (Mem.read_f64 m base)

let test_mem_crash_drops_dram_keeps_nvm () =
  let m = Mem.create () in
  let d = Mem.map_fresh m Layout.Dram 4096 in
  let n = Mem.map_fresh m Layout.Nvm 4096 in
  Mem.write_word m d 7L;
  Mem.write_word m n 9L;
  let n_frames =
    List.init 1 (fun i -> fst (Vspace.translate_exn (Mem.vspace m) (Int64.add n (Int64.of_int (i * 4096)))))
  in
  Mem.crash m;
  check_bool "dram mapping gone" false (Vspace.is_mapped (Mem.vspace m) d);
  check_bool "nvm mapping gone too" false (Vspace.is_mapped (Mem.vspace m) n);
  (* Remap the surviving NVM frames at a fresh base: data intact. *)
  let n' = Mem.map_existing m Layout.Nvm n_frames in
  check_i64 "nvm data survives remap" 9L (Mem.read_word m n')

(* --- properties -------------------------------------------------------- *)

let prop_word_roundtrip =
  QCheck.Test.make ~name:"mem word write/read roundtrip" ~count:200
    QCheck.(pair (int_bound 500) (map Int64.of_int int))
    (fun (word_idx, value) ->
      let m = Mem.create () in
      let base = Mem.map_fresh m Layout.Dram 4096 in
      let va = Int64.add base (Int64.of_int (word_idx * 8)) in
      Mem.write_word m va value;
      Int64.equal (Mem.read_word m va) value)

let prop_byte_roundtrip =
  QCheck.Test.make ~name:"mem byte write/read roundtrip" ~count:200
    QCheck.(pair (int_bound 4095) (int_bound 255))
    (fun (off, byte) ->
      let m = Mem.create () in
      let base = Mem.map_fresh m Layout.Dram 4096 in
      let va = Int64.add base (Int64.of_int off) in
      Mem.write_byte m va byte;
      Mem.read_byte m va = byte)

let prop_bytes_independent =
  QCheck.Test.make ~name:"byte writes do not disturb neighbours" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (pair (int_bound 255) (int_bound 255)))
    (fun writes ->
      let m = Mem.create () in
      let base = Mem.map_fresh m Layout.Dram 4096 in
      let shadow = Array.make 256 0 in
      List.iter
        (fun (off, v) ->
          shadow.(off) <- v;
          Mem.write_byte m (Int64.add base (Int64.of_int off)) v)
        writes;
      Array.for_all Fun.id
        (Array.init 256 (fun i ->
             Mem.read_byte m (Int64.add base (Int64.of_int i)) = shadow.(i))))

let prop_region_split =
  QCheck.Test.make ~name:"bit 47 splits the space exactly in half" ~count:500
    QCheck.(map Int64.of_int (int_bound max_int))
    (fun v ->
      let va = Int64.rem (Int64.abs v) Layout.va_limit in
      Layout.is_nvm_va va = (va >= Layout.nvm_va_base))

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_word_roundtrip; prop_byte_roundtrip; prop_bytes_independent;
      prop_region_split ]

let () =
  Alcotest.run "simmem"
    [
      ( "layout",
        [
          Alcotest.test_case "regions" `Quick test_layout_regions;
          Alcotest.test_case "constants" `Quick test_layout_constants;
          Alcotest.test_case "pages" `Quick test_layout_pages;
        ] );
      ( "physmem",
        [
          Alcotest.test_case "regions" `Quick test_phys_regions;
          Alcotest.test_case "read-write" `Quick test_phys_rw;
          Alcotest.test_case "crash" `Quick test_phys_crash;
          Alcotest.test_case "crash recycles DRAM frames" `Quick
            test_phys_crash_recycles_dram_frames;
        ] );
      ( "vspace",
        [
          Alcotest.test_case "reserve halves" `Quick test_vspace_reserve_halves;
          Alcotest.test_case "map-translate" `Quick test_vspace_map_translate;
          Alcotest.test_case "packed translate" `Quick test_vspace_translate_pa;
          Alcotest.test_case "fault" `Quick test_vspace_fault;
          Alcotest.test_case "unmap" `Quick test_vspace_unmap;
        ] );
      ( "mem",
        [
          Alcotest.test_case "words" `Quick test_mem_words;
          Alcotest.test_case "unaligned" `Quick test_mem_unaligned;
          Alcotest.test_case "bytes" `Quick test_mem_bytes;
          Alcotest.test_case "strings" `Quick test_mem_strings;
          Alcotest.test_case "ragged strings" `Quick test_mem_strings_ragged;
          Alcotest.test_case "string neighbours" `Quick
            test_mem_string_neighbours_untouched;
          Alcotest.test_case "floats" `Quick test_mem_floats;
          Alcotest.test_case "crash" `Quick test_mem_crash_drops_dram_keeps_nvm;
        ] );
      ("properties", qsuite);
    ]
