(* The multi-core machine: scheduler determinism, single-core
   byte-identity with the pre-multi-core machine (across the minic
   corpus and a kv run), coherence/FliT behaviour of the concurrent
   structures, and the crash-at-any-event durability sweep. *)

module Runtime = Nvml_runtime.Runtime
module Cluster = Nvml_runtime.Cluster
module Cpu = Nvml_arch.Cpu
module Multicore = Nvml_arch.Multicore
module Flit = Nvml_structures.Flit
module Conc_counter = Nvml_structures.Conc_counter
module Conc_list = Nvml_structures.Conc_list
module Conc_workload = Nvml_structures.Conc_workload
module Registry = Nvml_structures.Registry
module Intf = Nvml_structures.Intf
module Workload = Nvml_ycsb.Workload
module Corpus = Nvml_minic.Corpus
module Interp = Nvml_minic.Interp
module Faultinject = Nvml_faultinject.Faultinject
module Modelcheck = Nvml_modelcheck.Modelcheck
module Pool = Nvml_exec.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- episode helper ------------------------------------------------------ *)

type episode = {
  value : int64;
  keys : int64 list;
  per_core : (int * int) list; (* (cycles, instrs) per core *)
  sched : Multicore.stats;
  issued : int;
  elided : int;
  pending : int;
}

let run_episode ?(sched_seed = 7) ?(timing = true) ~cores ~ops_per_core () =
  let rt = Runtime.create ~mode:Runtime.Hw ~timing () in
  let pool = Runtime.create_pool rt ~name:"conc" ~size:(1 lsl 22) in
  let s = Conc_workload.setup ~sched_seed ~cores ~ops_per_core rt ~pool in
  Conc_workload.run s;
  let mc = Cluster.machine s.Conc_workload.cluster in
  Array.iter
    (fun cpu ->
      check_int "attribution = cycles"
        (Cpu.attribution_total (Cpu.attribution cpu))
        (Cpu.cycles cpu))
    (Multicore.cores mc);
  let fc = Conc_counter.flit s.Conc_workload.counter in
  let fl = Conc_list.flit s.Conc_workload.list in
  {
    value =
      Conc_counter.read
        (Conc_counter.handle s.Conc_workload.counter rt ~core:0);
    keys = List.sort compare (Conc_list.recovered_keys rt s.Conc_workload.list);
    per_core =
      Array.to_list
        (Array.map
           (fun cpu -> (Cpu.cycles cpu, (Cpu.snapshot cpu).Cpu.instrs))
           (Multicore.cores mc));
    sched = Multicore.stats mc;
    issued = Flit.issued fc + Flit.issued fl;
    elided = Flit.elided fc + Flit.elided fl;
    pending = Flit.pending fc + Flit.pending fl;
  }

(* --- scheduler determinism ---------------------------------------------- *)

let test_determinism () =
  let a = run_episode ~cores:3 ~ops_per_core:10 () in
  let b = run_episode ~cores:3 ~ops_per_core:10 () in
  check_bool "same seed, same episode" true (a = b);
  let c = run_episode ~sched_seed:99 ~cores:3 ~ops_per_core:10 () in
  check_bool "different seed still agrees functionally" true
    (a.value = c.value && a.keys = c.keys);
  check_bool "different seed schedules differently" true (a.sched <> c.sched)

let test_fast_mode_agrees () =
  let a = run_episode ~timing:true ~cores:2 ~ops_per_core:8 () in
  let b = run_episode ~timing:false ~cores:2 ~ops_per_core:8 () in
  check_bool "functional outputs equal across speeds" true
    (a.value = b.value && a.keys = b.keys)

(* --- the contended 2-core run: coherence and FliT ----------------------- *)

let test_contended_metrics () =
  let e = run_episode ~cores:2 ~ops_per_core:24 () in
  check_bool "counter sums every increment" true (e.value = 48L);
  check_int "list published every insert" 48 (List.length e.keys);
  check_bool "scheduler saw contention" true
    (e.sched.Multicore.contended_steps > 0);
  check_bool "scheduler switched cores" true (e.sched.Multicore.switches > 0);
  check_bool "coherence invalidations observed" true
    (e.sched.Multicore.invalidations > 0);
  check_bool "FliT elided flushes on quiescent objects" true (e.elided > 0);
  check_bool "FliT issued flushes under concurrent writers" true
    (e.issued > 0);
  check_int "FliT quiescent at the end" 0 e.pending

(* --- single core is byte-identical to the pre-multi-core machine -------- *)

let snapshot_fingerprint (s : Cpu.snapshot) =
  ( s.Cpu.cycles,
    s.Cpu.instrs,
    s.Cpu.loads,
    s.Cpu.stores,
    s.Cpu.storeps,
    s.Cpu.branches,
    s.Cpu.branch_mispredicts,
    s.Cpu.polb_misses,
    s.Cpu.valb_misses,
    (s.Cpu.pow_walks, s.Cpu.vaw_walks, s.Cpu.dram_accesses, s.Cpu.nvm_accesses)
  )

let run_minic ~cluster prog =
  let rt = Runtime.create ~mode:Runtime.Hw ~timing:true () in
  let heap =
    Runtime.Pool_region (Runtime.create_pool rt ~name:"heap" ~size:(1 lsl 22))
  in
  let out = ref [] in
  let body _ = out := (Interp.run rt ~heap prog ~args:[]).Interp.output in
  if cluster then Cluster.run (Cluster.create ~cores:1 rt) [| body |]
  else body 0;
  (!out, snapshot_fingerprint (Runtime.snapshot rt))

let test_single_core_minic_corpus () =
  List.iter
    (fun (name, prog) ->
      let direct = run_minic ~cluster:false prog in
      let clustered = run_minic ~cluster:true prog in
      check_bool (name ^ ": cores 1 == pre-refactor machine") true
        (direct = clustered))
    Corpus.all

let run_kv ~cluster =
  let (module M : Intf.ORDERED_MAP) = Registry.find_map "RB" in
  let rt = Runtime.create ~mode:Runtime.Hw ~timing:true () in
  let pool = Runtime.create_pool rt ~name:"kv" ~size:(1 lsl 22) in
  let body _ =
    let m = M.create rt (Runtime.Pool_region pool) in
    let spec =
      { Workload.paper_default with record_count = 64; operation_count = 400 }
    in
    for i = 0 to 63 do
      M.insert m ~key:(Workload.key_of_index i) ~value:(Int64.of_int i)
    done;
    Workload.iter_ops spec (function
      | Workload.Read k -> ignore (M.find m k)
      | Workload.Update (k, v) | Workload.Insert (k, v) ->
          M.insert m ~key:k ~value:v
      | Workload.Scan (start, len) ->
          for j = start to start + len - 1 do
            ignore (M.find m (Workload.key_of_index j))
          done
      | Workload.Rmw (k, d) ->
          let v = match M.find m k with Some v -> v | None -> 0L in
          M.insert m ~key:k ~value:(Int64.add v d))
  in
  if cluster then Cluster.run (Cluster.create ~cores:1 rt) [| body |]
  else body 0;
  snapshot_fingerprint (Runtime.snapshot rt)

let test_single_core_kv () =
  check_bool "kv run: cores 1 == pre-refactor machine" true
    (run_kv ~cluster:false = run_kv ~cluster:true)

(* --- validation ---------------------------------------------------------- *)

let test_validation () =
  let rt = Runtime.create ~mode:Runtime.Hw ~timing:false () in
  Alcotest.check_raises "cores 0" (Invalid_argument "Cluster.create: cores must be >= 1")
    (fun () -> ignore (Cluster.create ~cores:0 rt));
  check_int "atomically outside run is transparent" 42
    (Multicore.atomically (fun () -> 42));
  let pool = Runtime.create_pool rt ~name:"v" ~size:(1 lsl 20) in
  let region = Runtime.Pool_region pool in
  Alcotest.check_raises "counter cells 0"
    (Invalid_argument "Conc_counter.create: cells must be >= 1") (fun () ->
      ignore (Conc_counter.create rt region ~cells:0));
  let l = Conc_list.create rt region ~capacity:4 in
  Alcotest.check_raises "list slot out of range"
    (Invalid_argument "Conc_list.insert: slot out of range") (fun () ->
      Conc_list.insert (Conc_list.handle l rt) ~slot:4 ~key:1L)

(* --- the multi-core durability sweep ------------------------------------- *)

let conc_spec =
  {
    Faultinject.default_conc_spec with
    Faultinject.cores = 2;
    ops_per_core = 4;
  }

let test_faultinject_conc () =
  let r = Faultinject.run_conc ~spec:conc_spec () in
  check_int "cores" 2 r.Faultinject.conc_cores;
  check_bool "events enumerated" true (r.Faultinject.conc_events > 0);
  check_int "every event crashed" r.Faultinject.conc_events
    (List.length r.Faultinject.conc_outcomes);
  check_int "zero durability violations" 0
    (List.length r.Faultinject.conc_violation_list)

let test_faultinject_conc_jobs () =
  let seq = Faultinject.run_conc ~spec:conc_spec () in
  let pool = Pool.create ~jobs:4 () in
  let par =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Faultinject.run_conc ~par:(Pool.run pool) ~spec:conc_spec ())
  in
  check_bool "jobs 4 == jobs 1" true (seq = par)

(* --- schedule enumeration through the model checker ---------------------- *)

let test_modelcheck_conc () =
  let report =
    Modelcheck.run ~components:[ "conc" ] ~ops:192 ~seed:11 ()
  in
  check_int "no violations" 0 report.Modelcheck.violations

let () =
  Alcotest.run "conc"
    [
      ( "scheduler",
        [
          Alcotest.test_case "seeded determinism" `Quick test_determinism;
          Alcotest.test_case "fast mode agrees" `Quick test_fast_mode_agrees;
          Alcotest.test_case "contended metrics" `Quick test_contended_metrics;
        ] );
      ( "single-core identity",
        [
          Alcotest.test_case "minic corpus" `Slow test_single_core_minic_corpus;
          Alcotest.test_case "kv run" `Quick test_single_core_kv;
        ] );
      ( "validation",
        [ Alcotest.test_case "degenerate parameters" `Quick test_validation ] );
      ( "durability",
        [
          Alcotest.test_case "crash at every event" `Slow test_faultinject_conc;
          Alcotest.test_case "jobs determinism" `Slow test_faultinject_conc_jobs;
          Alcotest.test_case "modelcheck conc" `Slow test_modelcheck_conc;
        ] );
    ]
