(* Tests for the serving engine: shard determinism under a parallel
   runner, front-cache write-back correctness against a no-cache
   reference, closed-form cache behaviour on the hot-key-storm mix, and
   the batching cost model. *)

module Serving = Nvml_kvstore.Serving
module Workload = Nvml_ycsb.Workload
module Runtime = Nvml_runtime.Runtime
module Oplat = Nvml_runtime.Oplat
module Latency = Nvml_telemetry.Latency
module Cpu = Nvml_arch.Cpu
module Pool = Nvml_exec.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let mix name ~records ~ops =
  List.assoc name (Workload.serving_mixes ~records ~ops)

let run ?par ?(structure = "Hash") ?(shards = 8) ?(batch = 32)
    ?(front_cache = 0) spec =
  Runtime.with_default_timing false @@ fun () ->
  Serving.run ?par
    (Serving.default_config ~structure ~mode:Runtime.Hw ~shards ~batch
       ~front_cache spec)

(* Serialize everything deterministic about a report — the "metrics
   bytes" a --jobs N and --jobs 1 run must agree on. *)
let metrics_bytes (t : Serving.t) =
  let b = Buffer.create 256 in
  let s = Latency.summary (Oplat.latency t.Serving.oplat) in
  Printf.bprintf b "ops=%d found=%d missing=%d size=%d digest=%Lx\n"
    t.Serving.ops t.Serving.found t.Serving.missing t.Serving.size
    t.Serving.digest;
  Printf.bprintf b "cycles=%d/%d load=%d\n" t.Serving.run_cycles_max
    t.Serving.run_cycles_total t.Serving.load_cycles_max;
  Printf.bprintf b "cache=%d/%d/%d/%d/%d\n" t.Serving.cache.Serving.hits
    t.Serving.cache.Serving.misses t.Serving.cache.Serving.writebacks
    t.Serving.cache.Serving.evictions t.Serving.cache.Serving.scan_flushes;
  Printf.bprintf b "lat=%d/%d/%d/%d/%d\n" s.Latency.p50 s.Latency.p90
    s.Latency.p99 s.Latency.p999 s.Latency.max;
  List.iter
    (fun (sh : Serving.shard) ->
      Printf.bprintf b "shard%d=%d/%d/%d/%Lx\n" sh.Serving.index
        sh.Serving.records sh.Serving.ops sh.Serving.run.Cpu.cycles
        sh.Serving.digest)
    t.Serving.per_shard;
  Buffer.contents b

(* --shards 8 --jobs 4 must produce the same metrics bytes as --jobs 1,
   for every mix (shard cells are share-nothing; the merge is in
   shard-index order). *)
let test_jobs_determinism () =
  List.iter
    (fun (name, spec) ->
      let seq = run ~shards:8 ~front_cache:512 spec in
      let pool = Pool.create ~jobs:4 () in
      let par =
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () -> run ~par:(Pool.run pool) ~shards:8 ~front_cache:512 spec)
      in
      check_string
        (name ^ ": jobs 4 == jobs 1 metrics bytes")
        (metrics_bytes seq) (metrics_bytes par))
    (Workload.serving_mixes ~records:4000 ~ops:10_000)

(* A front-cache run must leave the persistent structures with exactly
   the contents of a cache-disabled reference run: every dirty entry is
   written back before detach.  The digest is order-independent, so it
   ignores the allocation reordering write-back introduces. *)
let test_writeback_matches_reference () =
  List.iter
    (fun (name, spec) ->
      let cached = run ~shards:4 ~front_cache:1024 spec in
      let plain = run ~shards:4 ~front_cache:0 spec in
      check_bool (name ^ ": digests equal") true
        (cached.Serving.digest = plain.Serving.digest);
      check_int (name ^ ": sizes equal") plain.Serving.size
        cached.Serving.size;
      check_int (name ^ ": found equal") plain.Serving.found
        cached.Serving.found;
      check_int (name ^ ": missing equal") plain.Serving.missing
        cached.Serving.missing)
    (Workload.serving_mixes ~records:4000 ~ops:10_000)

(* Hot-key-storm: the hot set receives hot_op_fraction of the draws and
   stays resident (the cache holds far more entries than hot keys), so
   the hit rate must reach at least the closed-form expected rate minus
   a compulsory-miss allowance for first touches. *)
let test_hot_storm_hit_rate () =
  let spec = mix "hot-storm" ~records:4000 ~ops:20_000 in
  let t = run ~shards:4 ~front_cache:512 spec in
  let c = t.Serving.cache in
  check_bool "cache saw traffic" true (c.Serving.hits + c.Serving.misses > 0);
  let expected = spec.Workload.hot_op_fraction *. 0.97 in
  let rate = Serving.hit_rate c in
  if rate < expected then
    Alcotest.failf "hit rate %.3f below closed-form floor %.3f" rate expected

(* Batching amortizes the runtime-entry cost: with the same workload,
   batch 32 must finish in strictly fewer service cycles than batch 1,
   and throughput must rise. *)
let test_batching_amortizes () =
  let spec = mix "read-latest" ~records:2000 ~ops:10_000 in
  let b1 = run ~shards:4 ~batch:1 spec in
  let b32 = run ~shards:4 ~batch:32 spec in
  check_bool "batch 32 uses fewer service cycles" true
    (b32.Serving.run_cycles_max < b1.Serving.run_cycles_max);
  check_bool "batch 32 has higher throughput" true
    (Serving.ops_per_sec b32 > Serving.ops_per_sec b1)

(* The shard function must cover all shards and preserve every record:
   per-shard record counts sum to the population and no shard is
   empty at these sizes. *)
let test_shard_balance () =
  let spec = mix "read-latest" ~records:4000 ~ops:4000 in
  let t = run ~shards:8 spec in
  check_int "eight shards" 8 (List.length t.Serving.per_shard);
  let records =
    List.fold_left
      (fun acc (s : Serving.shard) -> acc + s.Serving.records)
      0 t.Serving.per_shard
  in
  check_int "records partitioned exactly" 4000 records;
  List.iter
    (fun (s : Serving.shard) ->
      check_bool "shard non-empty" true (s.Serving.records > 0);
      check_int "shard routing stable" s.Serving.index
        (Serving.shard_of_key ~shards:8
           (Workload.key_of_index
              (* any record this shard loaded *)
              (let r = ref (-1) in
               for i = 0 to 3999 do
                 if !r < 0
                    && Serving.shard_of_key ~shards:8 (Workload.key_of_index i)
                       = s.Serving.index
                 then r := i
               done;
               !r))))
    t.Serving.per_shard

(* Scans observe values written through the cache: the scan path
   flushes dirty entries before reading around the cache, so a
   scan-heavy run with cache on finds exactly what the no-cache run
   finds (already covered by found-equality above) and records scan
   flushes. *)
let test_scan_flushes_dirty () =
  let spec = mix "scan-heavy" ~records:2000 ~ops:10_000 in
  let t = run ~shards:4 ~front_cache:512 spec in
  check_bool "scans triggered dirty flushes" true
    (t.Serving.cache.Serving.scan_flushes > 0);
  check_bool "writebacks happened" true
    (t.Serving.cache.Serving.writebacks > 0)

let () =
  Alcotest.run "serving"
    [
      ( "determinism",
        [
          Alcotest.test_case "jobs 4 == jobs 1" `Quick test_jobs_determinism;
          Alcotest.test_case "shard balance" `Quick test_shard_balance;
        ] );
      ( "front cache",
        [
          Alcotest.test_case "write-back matches reference" `Quick
            test_writeback_matches_reference;
          Alcotest.test_case "hot-storm hit rate" `Quick
            test_hot_storm_hit_rate;
          Alcotest.test_case "scan flushes dirty" `Quick
            test_scan_flushes_dirty;
        ] );
      ( "batching",
        [
          Alcotest.test_case "amortizes entry cost" `Quick
            test_batching_amortizes;
        ] );
    ]
