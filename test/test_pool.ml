(* Tests for the pool manager and the embedded free-list allocators:
   allocation/free correctness, coalescing, persistence of allocator
   state across crashes, the POT/VAT provider, and volatile allocation. *)

module Layout = Nvml_simmem.Layout
module Mem = Nvml_simmem.Mem
module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate
module Pmop = Nvml_pool.Pmop
module Valloc = Nvml_pool.Valloc
module Freelist = Nvml_pool.Freelist

let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make () =
  let mem = Mem.create () in
  (mem, Pmop.create mem)

(* --- pool lifecycle ----------------------------------------------------- *)

let test_create_open_detach () =
  let _, pm = make () in
  let id = Pmop.create_pool pm ~name:"p" ~size:65536 in
  check_bool "mapped after create" true (Pmop.pool_base pm id <> None);
  Pmop.detach_pool pm id;
  check_bool "unmapped after detach" true (Pmop.pool_base pm id = None);
  let base = Pmop.open_pool pm "p" in
  check_bool "mapped again" true (Pmop.pool_base pm id = Some base)

let test_duplicate_name_rejected () =
  let _, pm = make () in
  let _ = Pmop.create_pool pm ~name:"p" ~size:65536 in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Pmop.create_pool: pool \"p\" already exists") (fun () ->
      ignore (Pmop.create_pool pm ~name:"p" ~size:65536))

let test_pool_in_nvm_half () =
  let _, pm = make () in
  let id = Pmop.create_pool pm ~name:"p" ~size:65536 in
  let base = Option.get (Pmop.pool_base pm id) in
  check_bool "pool mapped in NVM half" true (Layout.is_nvm_va base)

let test_vat_lookup () =
  let _, pm = make () in
  let a = Pmop.create_pool pm ~name:"a" ~size:65536 in
  let b = Pmop.create_pool pm ~name:"b" ~size:65536 in
  let base_a = Option.get (Pmop.pool_base pm a) in
  let base_b = Option.get (Pmop.pool_base pm b) in
  (match Pmop.pool_of_va pm (Int64.add base_a 100L) with
  | Some (id, base) ->
      check_int "pool a found" a id;
      check_i64 "base a" base_a base
  | None -> Alcotest.fail "VAT miss for pool a");
  (match Pmop.pool_of_va pm (Int64.add base_b 65535L) with
  | Some (id, _) -> check_int "pool b found" b id
  | None -> Alcotest.fail "VAT miss for pool b");
  check_bool "gap VA not in any pool" true
    (Pmop.pool_of_va pm 0x1000L = None)

let test_vat_after_detach () =
  let _, pm = make () in
  let a = Pmop.create_pool pm ~name:"a" ~size:65536 in
  let base_a = Option.get (Pmop.pool_base pm a) in
  Pmop.detach_pool pm a;
  check_bool "detached pool out of VAT" true
    (Pmop.pool_of_va pm (Int64.add base_a 8L) = None)

(* --- pmalloc / pfree ----------------------------------------------------- *)

let test_pmalloc_relative () =
  let _, pm = make () in
  let pool = Pmop.create_pool pm ~name:"p" ~size:65536 in
  let p = Pmop.pmalloc pm ~pool 64 in
  check_bool "pmalloc returns relative format" true (Ptr.is_relative p);
  check_int "pool id embedded" pool (Ptr.pool_of p)

let test_pmalloc_distinct () =
  let _, pm = make () in
  let pool = Pmop.create_pool pm ~name:"p" ~size:65536 in
  let a = Pmop.pmalloc pm ~pool 64 in
  let b = Pmop.pmalloc pm ~pool 64 in
  check_bool "distinct blocks" true (not (Int64.equal a b));
  let gap = Int64.abs (Int64.sub (Ptr.offset_of b) (Ptr.offset_of a)) in
  check_bool "no overlap" true (gap >= 64L)

let test_pfree_reuse () =
  let _, pm = make () in
  let pool = Pmop.create_pool pm ~name:"p" ~size:65536 in
  let a = Pmop.pmalloc pm ~pool 64 in
  Pmop.pfree pm a;
  let b = Pmop.pmalloc pm ~pool 64 in
  check_i64 "freed block reused first-fit" a b

let test_double_free_detected () =
  let _, pm = make () in
  let pool = Pmop.create_pool pm ~name:"p" ~size:65536 in
  let a = Pmop.pmalloc pm ~pool 64 in
  Pmop.pfree pm a;
  check_bool "double free raises" true
    (try
       Pmop.pfree pm a;
       false
     with Freelist.Corrupt_arena _ -> true)

(* A forged allocated-looking header planted in payload data must not
   fool pfree: the size word reads 0x7FFF...F00|1 — large enough that
   [base + size] overflows any naive bounds arithmetic — but its CRC-16
   tag is wrong, so the header checksum rejects it before any size
   check runs.  (Folded from an old standalone overflow probe.) *)
let test_forged_header_rejected () =
  let mem, pm = make () in
  let pool = Pmop.create_pool pm ~name:"p" ~size:65536 in
  let x = Xlate.make (Pmop.provider pm) in
  let p = Pmop.pmalloc pm ~pool 64 in
  Mem.write_word mem (Xlate.ra2va x p) (Int64.logor 0x7FFFFFFFFFFFFF00L 1L);
  let bogus = Int64.add p Freelist.header_size in
  Alcotest.check_raises "forged header fails its checksum"
    (Freelist.Corrupt_arena
       (Printf.sprintf "block header at %Ld fails its checksum"
          (Ptr.offset_of p)))
    (fun () -> Pmop.pfree pm bogus)

let test_oom () =
  let _, pm = make () in
  let pool = Pmop.create_pool pm ~name:"p" ~size:8192 in
  check_bool "huge allocation fails cleanly" true
    (try
       ignore (Pmop.pmalloc pm ~pool 1_000_000);
       false
     with Freelist.Out_of_memory -> true)

let test_invariants_after_churn () =
  let _, pm = make () in
  let pool = Pmop.create_pool pm ~name:"p" ~size:262144 in
  let live = ref [] in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 500 do
    if Random.State.bool rng || !live = [] then
      live := Pmop.pmalloc pm ~pool (8 + Random.State.int rng 200) :: !live
    else begin
      let n = Random.State.int rng (List.length !live) in
      let p = List.nth !live n in
      live := List.filteri (fun i _ -> i <> n) !live;
      Pmop.pfree pm p
    end
  done;
  ignore (Pmop.check_pool_invariants pm ~pool)

let test_full_free_restores_arena () =
  let _, pm = make () in
  let pool = Pmop.create_pool pm ~name:"p" ~size:65536 in
  let before = Pmop.check_pool_invariants pm ~pool in
  let ps = List.init 20 (fun i -> Pmop.pmalloc pm ~pool (16 + (i * 8))) in
  List.iter (Pmop.pfree pm) ps;
  let after = Pmop.check_pool_invariants pm ~pool in
  check_i64 "all memory coalesced back" before after;
  check_i64 "nothing allocated" 0L (Pmop.allocated_bytes pm ~pool)

(* --- persistence --------------------------------------------------------- *)

let test_heap_state_survives_crash () =
  let mem, pm = make () in
  let pool = Pmop.create_pool pm ~name:"p" ~size:65536 in
  let x = Xlate.make (Pmop.provider pm) in
  let p = Pmop.pmalloc pm ~pool 64 in
  Mem.write_word mem (Xlate.ra2va x p) 4242L;
  Pmop.set_root pm ~pool p;
  let allocated = Pmop.allocated_bytes pm ~pool in
  Pmop.crash pm;
  let _ = Pmop.open_pool pm "p" in
  check_i64 "allocator accounting survives" allocated
    (Pmop.allocated_bytes pm ~pool);
  let root = Pmop.get_root pm ~pool in
  check_i64 "root pointer survives in relative form" p root;
  check_i64 "data reachable via root" 4242L
    (Mem.read_word mem (Xlate.ra2va x root));
  ignore (Pmop.check_pool_invariants pm ~pool)

let test_allocation_continues_after_restart () =
  let _, pm = make () in
  let pool = Pmop.create_pool pm ~name:"p" ~size:65536 in
  let a = Pmop.pmalloc pm ~pool 64 in
  Pmop.crash pm;
  let _ = Pmop.open_pool pm "p" in
  let b = Pmop.pmalloc pm ~pool 64 in
  check_bool "new block does not overlap pre-crash block" true
    (not (Int64.equal (Ptr.offset_of a) (Ptr.offset_of b)))

let test_multiple_restarts_distinct_bases () =
  let _, pm = make () in
  let pool = Pmop.create_pool pm ~name:"p" ~size:65536 in
  let bases = ref [ Option.get (Pmop.pool_base pm pool) ] in
  for _ = 1 to 3 do
    Pmop.crash pm;
    bases := Pmop.open_pool pm "p" :: !bases
  done;
  let sorted = List.sort_uniq Int64.compare !bases in
  check_int "every restart maps at a fresh base" 4 (List.length sorted)

(* --- volatile allocator --------------------------------------------------- *)

let test_valloc_basics () =
  let mem, _ = make () in
  let v = Valloc.create mem ~capacity:65536 in
  let a = Valloc.malloc v 64 in
  check_bool "malloc returns DRAM VA" true
    (Ptr.is_virtual a && not (Layout.is_nvm_va a));
  Mem.write_word mem a 5L;
  check_i64 "usable" 5L (Mem.read_word mem a);
  Valloc.free v a;
  let b = Valloc.malloc v 64 in
  check_i64 "reuse after free" a b;
  ignore (Valloc.check_invariants v)

let test_valloc_lost_on_crash () =
  let mem, pm = make () in
  let v = Valloc.create mem ~capacity:65536 in
  let a = Valloc.malloc v 64 in
  Mem.write_word mem a 5L;
  Pmop.crash pm;
  check_bool "volatile data gone after crash" true
    (try
       ignore (Mem.read_word mem a);
       false
     with Nvml_simmem.Vspace.Fault _ -> true)

(* --- properties ------------------------------------------------------------ *)

let prop_alloc_free_invariants =
  QCheck.Test.make ~name:"allocator invariants hold under random churn"
    ~count:60
    QCheck.(list_of_size Gen.(int_range 1 80) (pair bool (int_range 8 300)))
    (fun script ->
      let _, pm = make () in
      let pool = Pmop.create_pool pm ~name:"p" ~size:1048576 in
      let live = ref [] in
      List.iter
        (fun (do_alloc, size) ->
          if do_alloc || !live = [] then
            live := Pmop.pmalloc pm ~pool size :: !live
          else
            match !live with
            | p :: rest ->
                live := rest;
                Pmop.pfree pm p
            | [] -> ())
        script;
      ignore (Pmop.check_pool_invariants pm ~pool);
      true)

let prop_blocks_disjoint =
  QCheck.Test.make ~name:"live allocations never overlap" ~count:40
    QCheck.(list_of_size Gen.(int_range 2 40) (int_range 8 200))
    (fun sizes ->
      let _, pm = make () in
      let pool = Pmop.create_pool pm ~name:"p" ~size:1048576 in
      let blocks =
        List.map (fun s -> (Ptr.offset_of (Pmop.pmalloc pm ~pool s), s)) sizes
      in
      let sorted = List.sort compare blocks in
      let rec disjoint = function
        | (o1, s1) :: ((o2, _) :: _ as rest) ->
            Int64.add o1 (Int64.of_int s1) <= o2 && disjoint rest
        | _ -> true
      in
      disjoint sorted)

let prop_data_survives_crash =
  QCheck.Test.make ~name:"pool contents survive crash byte-for-byte" ~count:30
    QCheck.(list_of_size Gen.(int_range 1 30) (map Int64.of_int small_int))
    (fun values ->
      let mem, pm = make () in
      let pool = Pmop.create_pool pm ~name:"p" ~size:262144 in
      let x = Xlate.make (Pmop.provider pm) in
      let cells =
        List.map
          (fun v ->
            let p = Pmop.pmalloc pm ~pool 8 in
            Mem.write_word mem (Xlate.ra2va x p) v;
            (p, v))
          values
      in
      Pmop.crash pm;
      let _ = Pmop.open_pool pm "p" in
      List.for_all
        (fun (p, v) -> Int64.equal (Mem.read_word mem (Xlate.ra2va x p)) v)
        cells)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_alloc_free_invariants; prop_blocks_disjoint; prop_data_survives_crash ]

let () =
  Alcotest.run "pool"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "create-open-detach" `Quick
            test_create_open_detach;
          Alcotest.test_case "duplicate name" `Quick
            test_duplicate_name_rejected;
          Alcotest.test_case "NVM half" `Quick test_pool_in_nvm_half;
          Alcotest.test_case "VAT lookup" `Quick test_vat_lookup;
          Alcotest.test_case "VAT after detach" `Quick test_vat_after_detach;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "relative format" `Quick test_pmalloc_relative;
          Alcotest.test_case "distinct blocks" `Quick test_pmalloc_distinct;
          Alcotest.test_case "free-reuse" `Quick test_pfree_reuse;
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          Alcotest.test_case "forged header" `Quick
            test_forged_header_rejected;
          Alcotest.test_case "out of memory" `Quick test_oom;
          Alcotest.test_case "churn invariants" `Quick
            test_invariants_after_churn;
          Alcotest.test_case "full free coalesces" `Quick
            test_full_free_restores_arena;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "heap survives crash" `Quick
            test_heap_state_survives_crash;
          Alcotest.test_case "allocate after restart" `Quick
            test_allocation_continues_after_restart;
          Alcotest.test_case "distinct bases" `Quick
            test_multiple_restarts_distinct_bases;
        ] );
      ( "valloc",
        [
          Alcotest.test_case "basics" `Quick test_valloc_basics;
          Alcotest.test_case "lost on crash" `Quick test_valloc_lost_on_crash;
        ] );
      ("properties", qsuite);
    ]
