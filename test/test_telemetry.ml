(* Tests for the telemetry subsystem: registry semantics, enable-flag
   gating, deterministic sink merging, the bounded trace ring — and the
   two pinning contracts the rest of the tree relies on: enabling
   telemetry must not change simulated cycles, and cycle attribution
   must account for every cycle. *)

module Telemetry = Nvml_telemetry.Telemetry
module Latency = Nvml_telemetry.Latency
module Json = Nvml_telemetry.Json
module Pool = Nvml_exec.Pool
module Cpu = Nvml_arch.Cpu
module Runtime = Nvml_runtime.Runtime
module Oplat = Nvml_runtime.Oplat
module Harness = Nvml_kvstore.Harness
module Workload = Nvml_ycsb.Workload

let check = Alcotest.check
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run [f] in a fresh sink with the enable flag forced, restoring it. *)
let scoped ?(enabled = true) f =
  let was = Telemetry.enabled () in
  Telemetry.set_enabled enabled;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled was)
    (fun () -> Telemetry.run_with_sink (Telemetry.fresh_sink ()) f)

(* --- registry ----------------------------------------------------------- *)

let test_registry_interning () =
  let a = Telemetry.counter "test.registry.c" in
  let b = Telemetry.counter "test.registry.c" in
  scoped (fun () ->
      Telemetry.incr a;
      Telemetry.incr b;
      check_int "same name, same cell" 2 (Telemetry.value a))

let test_registry_kind_conflict () =
  ignore (Telemetry.counter "test.registry.kind");
  match Telemetry.histo "test.registry.kind" with
  | _ -> Alcotest.fail "expected Invalid_argument on kind conflict"
  | exception Invalid_argument _ -> ()

let test_disabled_records_nothing () =
  let c = Telemetry.counter "test.gate.c" in
  let h = Telemetry.histo "test.gate.h" in
  scoped ~enabled:false (fun () ->
      Telemetry.incr c;
      Telemetry.add c 5;
      Telemetry.observe h 7;
      Telemetry.event "test.gate.e";
      check_int "counter untouched" 0 (Telemetry.value c);
      check_bool "histogram untouched" false
        (List.mem_assoc "test.gate.h" (Telemetry.histos_snapshot ()));
      check_int "no events" 0 (Telemetry.events_total ()))

(* --- merge -------------------------------------------------------------- *)

let with_enabled f =
  let was = Telemetry.enabled () in
  Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled was) f

(* Everything observable about a sink, read through its own scope. *)
let view s =
  Telemetry.run_with_sink s (fun () ->
      ( Telemetry.counters_snapshot (),
        Telemetry.histos_snapshot (),
        Telemetry.events_snapshot (),
        Telemetry.events_total () ))

let test_merge_associativity () =
  with_enabled @@ fun () ->
  let c1 = Telemetry.counter "test.merge.c1" in
  let c2 = Telemetry.counter "test.merge.c2" in
  let h = Telemetry.histo "test.merge.h" in
  let make tag n =
    let s = Telemetry.fresh_sink () in
    Telemetry.run_with_sink s (fun () ->
        for i = 1 to n do
          Telemetry.incr c1;
          Telemetry.add c2 i;
          Telemetry.observe h (i * 3);
          Telemetry.event tag ~args:[ ("i", i) ]
        done);
    s
  in
  let left =
    let dst = Telemetry.fresh_sink () in
    List.iter
      (fun s -> Telemetry.merge_into ~dst s)
      [ make "a" 3; make "b" 4; make "c" 5 ];
    dst
  in
  let right =
    let dst = Telemetry.fresh_sink () in
    Telemetry.merge_into ~dst (make "a" 3);
    let bc = Telemetry.fresh_sink () in
    Telemetry.merge_into ~dst:bc (make "b" 4);
    Telemetry.merge_into ~dst:bc (make "c" 5);
    Telemetry.merge_into ~dst bc;
    dst
  in
  check_bool "((a+b)+c) = (a+(b+c))" true (view left = view right)

let test_merge_empty_sinks () =
  with_enabled @@ fun () ->
  let c = Telemetry.counter "test.merge.empty" in
  let s = Telemetry.fresh_sink () in
  Telemetry.run_with_sink s (fun () ->
      Telemetry.add c 9;
      Telemetry.event "only");
  let before = view s in
  (* Merging an empty sink in is the identity... *)
  Telemetry.merge_into ~dst:s (Telemetry.fresh_sink ());
  check_bool "empty source is identity" true (before = view s);
  (* ...and merging into an empty sink is a copy. *)
  let dst = Telemetry.fresh_sink () in
  Telemetry.merge_into ~dst s;
  check_bool "empty destination copies" true (before = view dst)

let test_pool_merge_matches_sequential () =
  let c = Telemetry.counter "test.pool.c" in
  let h = Telemetry.histo "test.pool.h" in
  let tasks =
    List.init 6 (fun i () ->
        Telemetry.add c (i + 1);
        Telemetry.observe h (i * 2);
        Telemetry.event "task" ~args:[ ("i", i) ];
        i)
  in
  let run jobs =
    scoped (fun () ->
        let pool = Pool.create ~jobs () in
        let out =
          Fun.protect
            ~finally:(fun () -> Pool.shutdown pool)
            (fun () -> Pool.run pool tasks)
        in
        ( out,
          Telemetry.counters_snapshot (),
          Telemetry.histos_snapshot (),
          Telemetry.events_snapshot () ))
  in
  check_bool "--jobs 4 telemetry equals --jobs 1" true (run 1 = run 4)

(* --- trace ring --------------------------------------------------------- *)

let with_capacity n f =
  Telemetry.set_trace_capacity n;
  Fun.protect ~finally:(fun () -> Telemetry.set_trace_capacity 8192) f

let event_is (e : Telemetry.event) = List.assoc "i" e.Telemetry.args

let test_ring_wraparound () =
  with_capacity 4 @@ fun () ->
  scoped (fun () ->
      for i = 1 to 10 do
        Telemetry.event "e" ~args:[ ("i", i) ]
      done;
      check_int "total counts every push" 10 (Telemetry.events_total ());
      check_int "dropped = total - capacity" 6 (Telemetry.events_dropped ());
      check
        Alcotest.(list int)
        "ring keeps the last capacity events" [ 7; 8; 9; 10 ]
        (List.map event_is (Telemetry.events_snapshot ())))

let test_ring_merge_keeps_suffix () =
  with_capacity 4 @@ fun () ->
  with_enabled @@ fun () ->
  let make lo =
    let s = Telemetry.fresh_sink () in
    Telemetry.run_with_sink s (fun () ->
        for i = lo to lo + 2 do
          Telemetry.event "e" ~args:[ ("i", i) ]
        done);
    s
  in
  let dst = Telemetry.fresh_sink () in
  Telemetry.merge_into ~dst (make 1);
  Telemetry.merge_into ~dst (make 4);
  let _, _, events, total = view dst in
  check_int "total is the concatenation's" 6 total;
  check
    Alcotest.(list int)
    "ring holds the concatenation's suffix" [ 3; 4; 5; 6 ]
    (List.map event_is events)

let test_span_nesting () =
  scoped (fun () ->
      let r =
        Telemetry.span "outer" (fun () ->
            1 + Telemetry.span "inner" (fun () -> 7))
      in
      check_int "span passes the result through" 8 r;
      (try Telemetry.span "boom" (fun () -> raise Exit) with Exit -> ());
      let shape =
        List.map
          (fun (e : Telemetry.event) ->
            ( e.Telemetry.ename,
              match e.Telemetry.phase with
              | Telemetry.Begin -> "B"
              | Telemetry.End -> "E"
              | Telemetry.Instant -> "i" ))
          (Telemetry.events_snapshot ())
      in
      check
        Alcotest.(list (pair string string))
        "begin/end events nest, end survives a raise"
        [
          ("outer", "B"); ("inner", "B"); ("inner", "E"); ("outer", "E");
          ("boom", "B"); ("boom", "E");
        ]
        shape)

(* --- pinning ------------------------------------------------------------ *)

let quick_spec =
  {
    Workload.paper_default with
    Workload.record_count = 300;
    operation_count = 1500;
  }

(* The timing model never reads telemetry: the simulated machine must
   produce identical results with recording on and off. *)
let test_telemetry_does_not_change_cycles () =
  let run () = Harness.run_benchmark "RB" ~mode:Runtime.Sw quick_spec in
  let off = scoped ~enabled:false run in
  let on = scoped ~enabled:true run in
  check_int "cycles pinned" off.Harness.run.Cpu.cycles on.Harness.run.Cpu.cycles;
  check_int "instructions pinned" off.Harness.run.Cpu.instrs
    on.Harness.run.Cpu.instrs;
  check_bool "whole snapshot pinned" true (off.Harness.run = on.Harness.run)

(* Every cycle beyond the per-instruction base is charged to exactly
   one stall source, in every mode. *)
let test_attribution_sums_to_cycles () =
  List.iter
    (fun mode ->
      let r = Harness.run_benchmark "Hash" ~mode quick_spec in
      check_int
        (Runtime.mode_name mode ^ " attribution accounts for every cycle")
        r.Harness.run.Cpu.cycles
        (Cpu.attribution_total r.Harness.attr))
    [ Runtime.Volatile; Runtime.Sw; Runtime.Hw; Runtime.Explicit ]

(* --- latency recorder --------------------------------------------------- *)

(* The documented error contract: a reported percentile never
   underestimates the exact order statistic and overestimates it by
   less than [rel_error_bound] (values below one sub-bucket span are
   exact).  Checked against a sorted-array oracle over distributions
   with very different shapes, including a heavy tail. *)
let test_percentile_oracle () =
  let distributions =
    [
      ("uniform", fun rng -> Random.State.int rng 10_000);
      ("constant", fun _ -> 4242);
      ("small-exact", fun rng -> Random.State.int rng 32);
      ( "heavy-tail",
        fun rng ->
          let v = 50 + Random.State.int rng 50 in
          if Random.State.int rng 1000 < 5 then v * 1000 else v );
      ("powers", fun rng -> 1 lsl Random.State.int rng 40);
    ]
  in
  List.iter
    (fun (name, gen) ->
      let rng = Random.State.make [| 42 |] in
      let n = 5_000 in
      let t = Latency.create () in
      let values = Array.init n (fun _ -> gen rng) in
      Array.iter (Latency.record t) values;
      let sorted = Array.copy values in
      Array.sort compare sorted;
      List.iter
        (fun q ->
          let rank =
            max 1 (min n (int_of_float (ceil (q *. float_of_int n))))
          in
          let exact = sorted.(rank - 1) in
          let approx = Latency.percentile t q in
          if approx < exact then
            Alcotest.failf "%s p%g: %d underestimates exact %d" name
              (100. *. q) approx exact;
          let bound =
            float_of_int exact *. (1.0 +. Latency.rel_error_bound)
          in
          if float_of_int approx > bound then
            Alcotest.failf "%s p%g: %d exceeds error bound %.1f (exact %d)"
              name (100. *. q) approx bound exact)
        [ 0.5; 0.9; 0.99; 0.999; 1.0 ])
    distributions

(* Merging per-cell recorders in any order and grouping must yield the
   same state as recording everything into one — the property the
   --jobs determinism of the bench metrics rests on. *)
let test_latency_merge_deterministic () =
  let rng = Random.State.make [| 7 |] in
  let chunks =
    List.init 4 (fun _ -> Array.init 500 (fun _ -> Random.State.int rng 100_000))
  in
  let record vs =
    let t = Latency.create () in
    Array.iter (Latency.record t) vs;
    t
  in
  let single = record (Array.concat chunks) in
  let left =
    let dst = Latency.create () in
    List.iter (fun vs -> Latency.merge_into ~dst (record vs)) chunks;
    dst
  in
  let right =
    let dst = Latency.create () in
    List.iter
      (fun vs -> Latency.merge_into ~dst (record vs))
      (List.rev chunks);
    dst
  in
  check_bool "merge order is immaterial" true
    (Latency.summary left = Latency.summary right);
  check_bool "merged equals single recorder" true
    (Latency.summary left = Latency.summary single)

(* Merging an empty recorder is an exact no-op: every observable of the
   destination — summary, min/max, and the whole percentile ladder —
   is unchanged.  An idle worker domain joining a pool must not perturb
   the merged document (the empty source's sentinel vmin/vmax must not
   leak into the destination). *)
let test_latency_merge_empty_noop () =
  let rng = Random.State.make [| 21 |] in
  let dst = Latency.create () in
  for _ = 1 to 300 do
    Latency.record dst (1 + Random.State.int rng 50_000)
  done;
  let observe t =
    ( Latency.summary t,
      Latency.min_value t,
      Latency.max_value t,
      List.map (Latency.percentile t) [ 0.0; 0.1; 0.5; 0.9; 0.99; 0.999; 1.0 ]
    )
  in
  let before = observe dst in
  Latency.merge_into ~dst (Latency.create ());
  check_bool "empty source leaves populated dst unchanged" true
    (observe dst = before);
  let empty_dst = Latency.create () in
  Latency.merge_into ~dst:empty_dst (Latency.create ());
  check_bool "empty into empty stays empty" true
    (observe empty_dst = observe (Latency.create ()))

(* Worker-domain latency recordings merge into the submitting domain's
   sink at pool join, so the sink snapshot is identical across --jobs
   counts. *)
let test_latency_jobs_determinism () =
  let l = Telemetry.latency "test.lat.pool" in
  let tasks =
    List.init 6 (fun i () ->
        for k = 1 to 50 do
          Telemetry.record l ((i * 1000) + (k * k))
        done;
        i)
  in
  let run jobs =
    scoped (fun () ->
        let pool = Pool.create ~jobs () in
        let out =
          Fun.protect
            ~finally:(fun () -> Pool.shutdown pool)
            (fun () -> Pool.run pool tasks)
        in
        ( out,
          List.map
            (fun (name, t) -> (name, Latency.summary t))
            (Telemetry.lats_snapshot ()) ))
  in
  check_bool "--jobs 4 latencies equal --jobs 1" true (run 1 = run 4)

(* --- per-op latency bracketing ------------------------------------------ *)

(* The per-op partition invariant: every bracketed operation's five
   components sum to its cycles, the component totals sum to the
   recorder's cycle sum, and the op latencies sum to the run phase's
   cycles — in every execution mode.  This is the guarantee that makes
   the tail attribution trustworthy: no cycle is dropped or double
   counted on the way from the core's stall accounting to the report. *)
let test_oplat_attribution_sums () =
  List.iter
    (fun mode ->
      let r = Harness.run_benchmark "RB" ~mode quick_spec in
      let ol = r.Harness.oplat in
      let name = Runtime.mode_name mode in
      check_int (name ^ ": op count is the op stream")
        quick_spec.Workload.operation_count (Oplat.count ol);
      check_int
        (name ^ ": op latencies sum to run-phase cycles")
        r.Harness.run.Cpu.cycles
        (Latency.sum (Oplat.latency ol));
      check_int
        (name ^ ": component totals sum to the cycle sum")
        (Latency.sum (Oplat.latency ol))
        (Oplat.components_total (Oplat.totals ol));
      List.iter
        (fun (s : Oplat.sample) ->
          check_int
            (Printf.sprintf "%s: slow op #%d components sum to its cycles"
               name s.Oplat.seq)
            s.Oplat.cycles
            (Oplat.components_total s.Oplat.comps))
        (Oplat.slowest ol))
    [ Runtime.Volatile; Runtime.Sw; Runtime.Hw; Runtime.Explicit ]

(* Fast functional mode still reports latencies — cycles equal
   instructions and every non-base component is zero. *)
let test_oplat_fast_mode () =
  let r =
    Runtime.with_default_timing false (fun () ->
        Harness.run_benchmark "RB" ~mode:Runtime.Hw quick_spec)
  in
  check_int "fast mode: cycles = instrs" r.Harness.run.Cpu.instrs
    r.Harness.run.Cpu.cycles;
  let tot = Oplat.totals r.Harness.oplat in
  check_int "fast mode: no check cycles" 0 tot.Oplat.check;
  check_int "fast mode: no translation cycles" 0 tot.Oplat.translation;
  check_int "fast mode: no stall cycles" 0 tot.Oplat.stall;
  check_int "fast mode: no media cycles" 0 tot.Oplat.media;
  check_int "fast mode: base carries everything"
    (Latency.sum (Oplat.latency r.Harness.oplat))
    tot.Oplat.base

(* The hot-path contract: recording a latency allocates nothing.  A
   small slack absorbs runtime noise (e.g. a stray boxed read); the
   guard fails loudly if [record] ever gains a per-call allocation. *)
let test_record_allocation_free () =
  let t = Latency.create () in
  let n = 100_000 in
  Latency.record t 1;
  let before = Gc.minor_words () in
  for i = 1 to n do
    Latency.record t i
  done;
  let words = Gc.minor_words () -. before in
  if words >= 64.0 then
    Alcotest.failf "record allocated %.0f minor words over %d calls" words n

(* --- JSON --------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 1);
        ( "b",
          Json.List
            [ Json.Float 0.5; Json.String "x\"y\n"; Json.Null; Json.Bool true ]
        );
        ("empty", Json.Obj []);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Ok d -> check_bool "parse (print doc) = doc" true (d = doc)
  | Error e -> Alcotest.fail e

let test_stats_json_shape () =
  scoped (fun () ->
      Telemetry.incr (Telemetry.counter "test.schema.c");
      let doc = Telemetry.stats_json ~derived:[ ("x.rate", 0.5) ] () in
      check_bool "derived key present" true
        (Json.path [ "derived"; "x.rate" ] doc = Some (Json.Float 0.5));
      check_bool "counter present" true
        (Json.path [ "counters"; "test.schema.c" ] doc = Some (Json.Int 1)))

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "interning" `Quick test_registry_interning;
          Alcotest.test_case "kind conflict" `Quick test_registry_kind_conflict;
          Alcotest.test_case "disabled is off" `Quick
            test_disabled_records_nothing;
        ] );
      ( "merge",
        [
          Alcotest.test_case "associativity" `Quick test_merge_associativity;
          Alcotest.test_case "empty sinks" `Quick test_merge_empty_sinks;
          Alcotest.test_case "pool join determinism" `Quick
            test_pool_merge_matches_sequential;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "ring merge suffix" `Quick
            test_ring_merge_keeps_suffix;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
        ] );
      ( "pinning",
        [
          Alcotest.test_case "telemetry does not change cycles" `Quick
            test_telemetry_does_not_change_cycles;
          Alcotest.test_case "attribution sums to cycles" `Quick
            test_attribution_sums_to_cycles;
        ] );
      ( "latency",
        [
          Alcotest.test_case "percentile vs sorted oracle" `Quick
            test_percentile_oracle;
          Alcotest.test_case "merge determinism" `Quick
            test_latency_merge_deterministic;
          Alcotest.test_case "merge empty no-op" `Quick
            test_latency_merge_empty_noop;
          Alcotest.test_case "pool join determinism" `Quick
            test_latency_jobs_determinism;
          Alcotest.test_case "record is allocation-free" `Quick
            test_record_allocation_free;
        ] );
      ( "oplat",
        [
          Alcotest.test_case "attribution sums per op" `Quick
            test_oplat_attribution_sums;
          Alcotest.test_case "fast mode latencies" `Quick test_oplat_fast_mode;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "stats shape" `Quick test_stats_json_shape;
        ] );
    ]
