(* Tests for the media-error layer: the seeded injector's fault model,
   the checksummed superblock with its replica, degraded-mode attach,
   and the scrub/repair engine — the headline scenario is a corrupted
   primary superblock that attaches read-only and is restored to
   read-write from the replica by [scrub --repair]. *)

module Layout = Nvml_simmem.Layout
module Mem = Nvml_simmem.Mem
module Physmem = Nvml_simmem.Physmem
module Ptr = Nvml_core.Ptr
module Media = Nvml_media.Media
module Pmop = Nvml_pool.Pmop
module Freelist = Nvml_pool.Freelist
module Scrub = Nvml_pool.Scrub

let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

let make () =
  let mem = Mem.create () in
  (mem, Pmop.create mem)

(* A sealed pool with a few live objects, a freed hole and a root. *)
let build_pool pm ~name =
  let pool = Pmop.create_pool pm ~name ~size:65536 in
  let ps = List.init 8 (fun i -> Pmop.pmalloc pm ~pool (32 + (i * 16))) in
  Pmop.pfree pm (List.nth ps 3);
  Pmop.set_root pm ~pool (List.hd ps);
  Pmop.seal_pool pm ~pool;
  pool

(* Flip one bit of a pool-relative superblock word behind the media
   model's back ([poke] does not heal, unlike a store). *)
let flip_sb_word mem pm ~pool ~offset =
  let frame = List.hd (Pmop.pool_frames pm ~pool) in
  let word_index = Int64.to_int offset / 8 in
  let phys = Mem.phys mem in
  let v = Physmem.peek phys ~frame ~word_index in
  Physmem.poke phys ~frame ~word_index (Int64.logxor v 16L)

(* --- headline: corrupt primary, replica-backed repair ------------------- *)

let test_degraded_attach_and_repair () =
  let mem, pm = make () in
  let pool = build_pool pm ~name:"p" in
  let root_before = Pmop.get_root pm ~pool in
  Pmop.detach_pool pm pool;
  flip_sb_word mem pm ~pool ~offset:40L (* alloc_count, CRC-covered *);
  ignore (Pmop.open_pool pm "p");
  check_bool "corrupt primary attaches degraded" true
    (Pmop.is_degraded pm ~pool);
  check_i64 "reads still served" root_before (Pmop.get_root pm ~pool);
  check_bool "pmalloc refused read-only" true
    (try
       ignore (Pmop.pmalloc pm ~pool 64);
       false
     with Media.Media_error _ -> true);
  check_bool "set_root refused read-only" true
    (try
       Pmop.set_root pm ~pool 0L;
       false
     with Media.Media_error _ -> true);
  (* scrub --repair: the intact replica restores the primary. *)
  let report = Scrub.run (Scrub.create pm) ~repair:true in
  let pr = List.find (fun (r : Scrub.pool_report) -> r.Scrub.pool = pool)
      report.Scrub.pools in
  check_bool "pool reported repaired" true (pr.Scrub.state = Scrub.Repaired);
  check_bool "primary finding repaired" true
    (List.exists
       (fun (f : Scrub.finding) ->
         f.Scrub.kind = Scrub.Superblock_primary && f.Scrub.repaired)
       pr.Scrub.findings);
  check_bool "degraded state cleared" false (Pmop.is_degraded pm ~pool);
  check_i64 "root survived the round trip" root_before
    (Pmop.get_root pm ~pool);
  ignore (Pmop.pmalloc pm ~pool 64);
  ignore (Pmop.check_pool_invariants pm ~pool)

let test_scrub_without_repair_stays_degraded () =
  let mem, pm = make () in
  let pool = build_pool pm ~name:"p" in
  Pmop.detach_pool pm pool;
  flip_sb_word mem pm ~pool ~offset:48L (* free_count, CRC-covered *);
  ignore (Pmop.open_pool pm "p");
  let report = Scrub.run (Scrub.create pm) ~repair:false in
  let pr = List.find (fun (r : Scrub.pool_report) -> r.Scrub.pool = pool)
      report.Scrub.pools in
  check_bool "detected but not repaired" true
    (pr.Scrub.state = Scrub.Degraded && report.Scrub.repaired = 0);
  check_bool "still degraded" true (Pmop.is_degraded pm ~pool)

(* --- injector fault model ----------------------------------------------- *)

(* Search the pool's frames with the pure placement function for a word
   the injector will fault — reading through [decide] never perturbs
   the injector's state. *)
let find_fault pm inj ~pool ~kind =
  let frames = Pmop.pool_frames pm ~pool in
  let found = ref None in
  List.iteri
    (fun fi frame ->
      for w = 0 to Layout.words_per_page - 1 do
        if !found = None && Media.decide inj ~frame ~word_index:w = Some kind
        then found := Some (Int64.of_int ((fi * Layout.page_size) + (w * 8)))
      done)
    frames;
  !found

let test_poisoned_line_raises () =
  let mem, pm = make () in
  let pool = build_pool pm ~name:"p" in
  let inj = Media.create ~kinds:[ Media.Poison_line ] ~rate:0.05 ~seed:11 () in
  Media.attach (Mem.phys mem) inj;
  match find_fault pm inj ~pool ~kind:Media.Poison_line with
  | None -> Alcotest.fail "no poisoned line at rate 0.05"
  | Some off ->
      let a = Pmop.scrub_access pm ~pool in
      check_bool "poisoned read raises Media_error" true
        (try
           ignore (a.Freelist.read off);
           false
         with Media.Media_error _ -> true);
      check_bool "poison served counted" true (Media.poisons_served inj > 0)

let test_stores_heal () =
  let mem, pm = make () in
  let pool = build_pool pm ~name:"p" in
  let inj = Media.create ~kinds:[ Media.Bit_flip ] ~rate:0.05 ~seed:3 () in
  Media.attach (Mem.phys mem) inj;
  match find_fault pm inj ~pool ~kind:Media.Bit_flip with
  | None -> Alcotest.fail "no flipped word at rate 0.05"
  | Some off ->
      let a = Pmop.scrub_access pm ~pool in
      let flipped = a.Freelist.read off in
      a.Freelist.write off flipped;
      check_i64 "store re-establishes the cell" flipped (a.Freelist.read off);
      check_bool "heal recorded" true (Media.healed_words inj > 0)

let test_transients_are_transparent () =
  let mem, pm = make () in
  let pool = build_pool pm ~name:"t" in
  let inj = Media.create ~kinds:[ Media.Transient ] ~rate:0.2 ~seed:5 () in
  Media.attach (Mem.phys mem) inj;
  (* A whole alloc/free storm under 20% transient faults: every read is
     retried internally, so nothing surfaces. *)
  let ps = List.init 16 (fun i -> Pmop.pmalloc pm ~pool (24 + (i * 8))) in
  List.iter (Pmop.pfree pm) ps;
  ignore (Pmop.check_pool_invariants pm ~pool);
  check_bool "transient faults were actually exercised" true
    (Media.transients_served inj > 0)

let test_injector_survives_crash () =
  let mem, pm = make () in
  let pool = build_pool pm ~name:"p" in
  let inj = Media.create ~kinds:[ Media.Poison_line ] ~rate:0.05 ~seed:11 () in
  Media.attach (Mem.phys mem) inj;
  let off =
    match find_fault pm inj ~pool ~kind:Media.Poison_line with
    | Some off -> off
    | None -> Alcotest.fail "no poisoned line at rate 0.05"
  in
  Pmop.crash pm;
  check_bool "media model still armed after crash" true
    (Physmem.media_armed (Mem.phys mem));
  ignore (Pmop.open_pool pm "p");
  let a = Pmop.scrub_access pm ~pool in
  check_bool "same fault surfaces after restart" true
    (try
       ignore (a.Freelist.read off);
       false
     with Media.Media_error _ -> true)

(* --- determinism --------------------------------------------------------- *)

let test_placement_is_pure () =
  let mk () =
    let mem, pm = make () in
    let pool = build_pool pm ~name:"d" in
    let inj = Media.create ~rate:0.01 ~seed:42 () in
    Media.attach (Mem.phys mem) inj;
    let faults = ref [] in
    List.iter
      (fun frame ->
        for w = 0 to Layout.words_per_page - 1 do
          match Media.decide inj ~frame ~word_index:w with
          | Some k -> faults := (frame, w, Media.kind_name k) :: !faults
          | None -> ()
        done)
      (Pmop.pool_frames pm ~pool);
    !faults
  in
  let a = mk () and b = mk () in
  check_bool "identical machines draw identical fault maps" true (a = b);
  check_bool "fault map is non-trivial" true (List.length a > 0)

let () =
  Alcotest.run "media"
    [
      ( "degraded-attach",
        [
          Alcotest.test_case "corrupt primary: ro attach, replica repair"
            `Quick test_degraded_attach_and_repair;
          Alcotest.test_case "scrub without --repair stays degraded" `Quick
            test_scrub_without_repair_stays_degraded;
        ] );
      ( "injector",
        [
          Alcotest.test_case "poisoned line raises" `Quick
            test_poisoned_line_raises;
          Alcotest.test_case "stores heal" `Quick test_stores_heal;
          Alcotest.test_case "transients are transparent" `Quick
            test_transients_are_transparent;
          Alcotest.test_case "survives crash" `Quick
            test_injector_survives_crash;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "placement is pure" `Quick test_placement_is_pure;
        ] );
    ]
