(* Fault-injection engine tests: exhaustive crash-point sweeps over a
   small transaction stream and over the KV harness, torn-write
   round-trips, parallel-sweep determinism, and the checker self-test
   (a deliberately broken recovery must be caught). *)

module Fi = Nvml_simmem.Fi
module Txn = Nvml_runtime.Txn
module F = Nvml_faultinject.Faultinject
module Pool = Nvml_exec.Pool

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let no_violations (r : F.report) =
  Alcotest.(check (list (pair int string))) "no violations" [] r.violations

(* --- torn-word mixing --------------------------------------------------- *)

let test_torn_word () =
  let old_value = 0x1122334455667788L and new_value = 0x99aabbccddeeff00L in
  Alcotest.(check int64)
    "all old" old_value
    (Fi.torn_word ~keep_old_bytes:0xFF ~old_value ~new_value);
  Alcotest.(check int64)
    "all new" new_value
    (Fi.torn_word ~keep_old_bytes:0x00 ~old_value ~new_value);
  Alcotest.(check int64)
    "low half old" 0x99aabbcc55667788L
    (Fi.torn_word ~keep_old_bytes:0x0F ~old_value ~new_value);
  Alcotest.(check int64)
    "one lane" 0x99aabbccddee7700L
    (Fi.torn_word ~keep_old_bytes:0x02 ~old_value ~new_value)

(* --- exhaustive sweep over a 3-op transaction stream -------------------- *)

let test_counter_sweep () =
  let w = F.counter_workload ~ops:3 () in
  let r = F.run ~spec:F.default_spec w in
  check "one crash point per event" r.F.events (List.length r.F.outcomes);
  check_bool "events counted" true (r.F.events > 0);
  check_bool "log appends seen" true (r.F.tally.F.log_appends > 0);
  check "every point recovered" (List.length r.F.outcomes)
    (r.F.clean + r.F.rolled_back);
  check_bool "some crash points interrupt live transactions" true
    (List.exists
       (fun (o : F.outcome) ->
         match o.F.recovery with Txn.Rolled_back n -> n > 0 | _ -> false)
       r.F.outcomes);
  no_violations r

(* Torn variant: the interrupted data word is replaced by a seeded
   byte-mix of old and new; the undo log must heal every one. *)
let test_counter_sweep_torn () =
  let w = F.counter_workload ~ops:3 () in
  let r = F.run ~spec:{ F.default_spec with torn = true; seed = 3 } w in
  check_bool "torn words were injected" true (r.F.torn_injected > 0);
  no_violations r

(* --- checker self-test -------------------------------------------------- *)

(* With recovery disabled the machine reboots into whatever the crash
   left behind; the checker must notice at some crash point. *)
let test_broken_recovery_is_caught () =
  let w = F.counter_workload ~ops:3 () in
  let r = F.run ~spec:{ F.default_spec with break_recovery = true } w in
  check_bool "the checker catches a disabled recovery" true
    (r.F.violations <> [])

(* --- the KV harness ----------------------------------------------------- *)

(* Acceptance sweep: every persistence event of a 100-op YCSB stream
   against the RB tree, zero violations. *)
let test_kv_full_sweep () =
  let w = F.kv_workload ~structure:"RB" ~records:15 ~ops:100 () in
  let pool = Pool.create () in
  let r =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> F.run ~par:(Pool.run pool) ~spec:F.default_spec w)
  in
  check_bool "a real event stream" true (r.F.events > 100);
  check_bool "storeP retirements seen" true (r.F.tally.F.storeps > 0);
  check_bool "allocator metadata writes seen" true (r.F.tally.F.meta_writes > 0);
  check "one crash point per event" r.F.events (List.length r.F.outcomes);
  check "every point recovered" (List.length r.F.outcomes)
    (r.F.clean + r.F.rolled_back);
  no_violations r

let test_kv_torn_sweep () =
  let w = F.kv_workload ~structure:"AVL" ~records:10 ~ops:40 () in
  let r = F.run ~spec:{ F.default_spec with every_n = 5; torn = true } w in
  check_bool "torn words were injected" true (r.F.torn_injected > 0);
  no_violations r

(* --- parallel-sweep determinism ----------------------------------------- *)

let test_jobs_determinism () =
  let w = F.kv_workload ~structure:"Skip" ~records:6 ~ops:15 () in
  let spec = { F.default_spec with every_n = 4; torn = true; seed = 11 } in
  let seq = F.run ~spec w in
  let pool = Pool.create ~jobs:4 () in
  let par =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> F.run ~par:(Pool.run pool) ~spec w)
  in
  check "same point count" (List.length seq.F.outcomes)
    (List.length par.F.outcomes);
  check_bool "--jobs 4 outcomes identical to --jobs 1" true
    (seq.F.outcomes = par.F.outcomes);
  check_bool "identical reports" true (seq = par)

let () =
  Alcotest.run "faultinject"
    [
      ( "torn",
        [
          Alcotest.test_case "torn_word mixing" `Quick test_torn_word;
          Alcotest.test_case "counter sweep, torn" `Quick
            test_counter_sweep_torn;
          Alcotest.test_case "kv sweep, torn" `Quick test_kv_torn_sweep;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "counter, every event" `Quick test_counter_sweep;
          Alcotest.test_case "kv RB, every event of 100 ops" `Slow
            test_kv_full_sweep;
        ] );
      ( "checker",
        [
          Alcotest.test_case "broken recovery is caught" `Quick
            test_broken_recovery_is_caught;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 4 == jobs 1" `Quick test_jobs_determinism;
        ] );
    ]
