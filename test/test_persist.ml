(* Persistency-model engine tests: the epoch engine's drain accounting
   through the KV harness, exhaustive contract-verified crash sweeps
   under every retention model (single-core RB and 2-core concurrent),
   and the eager pin — `~persist:Eager` must be indistinguishable from
   not passing a model at all. *)

module W = Nvml_ycsb.Workload
module Cpu = Nvml_arch.Cpu
module Runtime = Nvml_runtime.Runtime
module Persist = Nvml_runtime.Persist
module Harness = Nvml_kvstore.Harness
module F = Nvml_faultinject.Faultinject
module Pool = Nvml_exec.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let no_violations name (r : F.report) =
  Alcotest.(check (list (pair int string))) name [] r.F.violations

(* A small write-heavy spec: the drain engine only has work to do when
   operations dirty persistent lines. *)
let small =
  {
    (W.scale W.paper_default 50) with
    W.read_proportion = 0.5;
    update_proportion = 0.45;
    insert_proportion = 0.05;
  }

(* --- epoch-engine drain accounting -------------------------------------- *)

let test_harness_drain_accounting () =
  let run persist = Harness.run_benchmark "RB" ~mode:Runtime.Hw ~persist small in
  let eager = run Persist.Eager in
  let epoch = run (Persist.Epoch { interval = 4 }) in
  let lazy_ = run Persist.Lazy_on_detach in
  (* Eager persists in place: no buffering, no drain traffic. *)
  check_int "eager drains" 0 eager.Harness.persist.Harness.drains;
  check_int "eager flushes" 0 eager.Harness.persist.Harness.flushes;
  check_int "eager buffered" 0 eager.Harness.persist.Harness.buffered;
  (* Epoch mode must actually drain: one fence per drain, and at least
     one flushed line per drain on a write-heavy stream. *)
  let p = epoch.Harness.persist in
  check_bool "epoch drains" true (p.Harness.drains > 0);
  check_bool "epoch flushes" true (p.Harness.flushes >= p.Harness.drains);
  check_int "one fence per drain" p.Harness.drains p.Harness.fences;
  (* Lazy drains exactly once, at the closing sync. *)
  check_bool "lazy buffers the whole run" true
    (lazy_.Harness.persist.Harness.buffered > 0);
  check_bool "lazy coalesces: fewer flushes than epoch:4" true
    (lazy_.Harness.persist.Harness.flushes < p.Harness.flushes);
  (* Same functional behaviour under every model. *)
  check_int "epoch hits" eager.Harness.hits epoch.Harness.hits;
  check_int "lazy hits" eager.Harness.hits lazy_.Harness.hits

(* --- the eager pin ------------------------------------------------------ *)

(* `~persist:Eager` must be byte-identical to the pre-existing default:
   same cycles, same attribution, same check counts, same fi report. *)
let test_eager_pin () =
  let explicit =
    Harness.run_benchmark "RB" ~mode:Runtime.Hw ~persist:Persist.Eager small
  in
  let default = Harness.run_benchmark "RB" ~mode:Runtime.Hw small in
  check_int "same run cycles" default.Harness.run.Cpu.cycles
    explicit.Harness.run.Cpu.cycles;
  check_int "same load cycles" default.Harness.load.Cpu.cycles
    explicit.Harness.load.Cpu.cycles;
  check_bool "same run snapshot" true
    (default.Harness.run = explicit.Harness.run);
  check_bool "same check counts" true
    (default.Harness.checks = explicit.Harness.checks);
  let w = F.kv_workload ~structure:"RB" ~records:8 ~ops:24 () in
  let r_explicit = F.run ~persist:Persist.Eager ~spec:F.default_spec w in
  let r_default = F.run ~spec:F.default_spec w in
  check_bool "identical fi reports" true (r_explicit = r_default)

(* --- exhaustive single-core sweeps: oracle vs observation --------------- *)

(* Every event of an RB stream under every retention model.  The sweep
   hard-fails (a violation) whenever the recovered state differs from
   the oracle's predicted epoch boundary in either direction, so "no
   violations" is exactly "oracle matched observed recovery at every
   crash point". *)
let test_rb_sweep_all_models () =
  let sweep persist =
    let w = F.kv_workload ~structure:"RB" ~records:8 ~ops:24 () in
    F.run ~persist ~spec:{ F.default_spec with F.torn = true } w
  in
  let eager = sweep Persist.Eager in
  let epoch = sweep (Persist.Epoch { interval = 4 }) in
  let lazy_ = sweep Persist.Lazy_on_detach in
  List.iter
    (fun (name, (r : F.report)) ->
      no_violations name r;
      check_int (name ^ ": one crash point per event") r.F.events
        (List.length r.F.outcomes))
    [ ("eager", eager); ("epoch:4", epoch); ("lazy", lazy_) ];
  (* The exposure ordering: eager loses nothing, wider retention loses
     more (monotone in the model, verified not estimated). *)
  check_int "eager loses nothing" 0 eager.F.suffix_lost;
  check_bool "epoch:4 exposes some suffix loss" true (epoch.F.suffix_lost > 0);
  check_bool "lazy exposes at least as much as epoch:4" true
    (lazy_.F.suffix_lost >= epoch.F.suffix_lost);
  (* Relaxed sweeps enumerate the drain µ-events too. *)
  check_bool "epoch:4 sweeps flush events" true (epoch.F.tally.F.flushes > 0);
  check_bool "epoch:4 sweeps fence events" true (epoch.F.tally.F.fences > 0);
  check_int "eager has no drain events" 0 eager.F.tally.F.flushes

(* Parallel sweep under a relaxed model must match the sequential one
   byte for byte (share-nothing crash passes). *)
let test_relaxed_jobs_determinism () =
  let w = F.kv_workload ~structure:"RB" ~records:6 ~ops:12 () in
  let spec = { F.default_spec with F.torn = true; F.seed = 7 } in
  let persist = Persist.Epoch { interval = 4 } in
  let seq = F.run ~persist ~spec w in
  let pool = Pool.create ~jobs:4 () in
  let par =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> F.run ~par:(Pool.run pool) ~persist ~spec w)
  in
  check_bool "jobs 4 == jobs 1 under epoch:4" true (seq = par)

(* --- exhaustive 2-core sweep under epoch:4 ------------------------------ *)

(* Every event of the seeded 2-core interleaving, per-core epochs
   draining through the shared buffer: the recovered counter/chain must
   equal the oracle's durable-value prediction at every point. *)
let test_conc_epoch4_sweep () =
  let spec = { F.default_conc_spec with F.cores = 2 } in
  let run persist = F.run_conc ~persist ~spec () in
  let eager = run Persist.Eager in
  let epoch = run (Persist.Epoch { interval = 4 }) in
  List.iter
    (fun (name, (r : F.conc_report)) ->
      Alcotest.(check (list (pair int string)))
        (name ^ ": no violations") [] r.F.conc_violation_list;
      check_int
        (name ^ ": one crash point per event")
        r.F.conc_events
        (List.length r.F.conc_outcomes);
      check_int (name ^ ": two cores") 2 r.F.conc_cores)
    [ ("eager", eager); ("epoch:4", epoch) ];
  (* The relaxed machine schedules extra drain µ-events, so its sweep
     is strictly longer than the eager one. *)
  check_bool "epoch:4 enumerates drain events" true
    (epoch.F.conc_events > eager.F.conc_events)

let () =
  Alcotest.run "persist"
    [
      ( "engine",
        [
          Alcotest.test_case "harness drain accounting" `Quick
            test_harness_drain_accounting;
        ] );
      ( "pin",
        [ Alcotest.test_case "eager is the default, exactly" `Quick
            test_eager_pin ] );
      ( "sweep",
        [
          Alcotest.test_case "RB, every event, all models" `Quick
            test_rb_sweep_all_models;
          Alcotest.test_case "2-core counter+list, epoch:4" `Quick
            test_conc_epoch4_sweep;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 4 == jobs 1 under epoch:4" `Quick
            test_relaxed_jobs_determinism;
        ] );
    ]
