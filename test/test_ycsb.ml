(* Tests for the YCSB-style workload generator: distribution shapes,
   op-mix proportions, determinism, and key generation. *)

module D = Nvml_ycsb.Distribution
module W = Nvml_ycsb.Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let histogram dist rng ~draws ~n =
  let h = Array.make n 0 in
  for _ = 1 to draws do
    let i = D.sample dist rng in
    h.(i) <- h.(i) + 1
  done;
  h

let test_uniform_in_range () =
  let rng = Random.State.make [| 1 |] in
  let d = D.uniform 100 in
  for _ = 1 to 1000 do
    let x = D.sample d rng in
    if x < 0 || x >= 100 then Alcotest.fail "out of range"
  done

let test_uniform_roughly_flat () =
  let rng = Random.State.make [| 2 |] in
  let h = histogram (D.uniform 10) rng ~draws:10000 ~n:10 in
  Array.iter
    (fun c -> check_bool "each bin near 1000" true (c > 700 && c < 1300))
    h

let test_zipfian_skew () =
  let rng = Random.State.make [| 3 |] in
  let h = histogram (D.zipfian 1000) rng ~draws:20000 ~n:1000 in
  (* Rank 0 must dominate; the head must hold most of the mass. *)
  check_bool "rank 0 most popular" true
    (h.(0) = Array.fold_left max 0 h);
  let head = Array.fold_left ( + ) 0 (Array.sub h 0 100) in
  check_bool "top 10% of keys get >60% of draws" true
    (float_of_int head /. 20000. > 0.6)

let test_latest_prefers_recent () =
  let rng = Random.State.make [| 4 |] in
  let d = D.latest 1000 in
  let h = histogram d rng ~draws:20000 ~n:1000 in
  check_bool "most recent record most popular" true
    (h.(999) = Array.fold_left max 0 h);
  let tail = Array.fold_left ( + ) 0 (Array.sub h 900 100) in
  check_bool "recent 10% get most draws" true
    (float_of_int tail /. 20000. > 0.6)

let test_latest_grows () =
  let rng = Random.State.make [| 5 |] in
  let d = D.latest 10 in
  check_int "initial population" 10 (D.population d);
  D.grow d;
  check_int "population grows" 11 (D.population d);
  (* New element is sampleable. *)
  let seen = ref false in
  for _ = 1 to 500 do
    if D.sample d rng = 10 then seen := true
  done;
  check_bool "new most-recent record sampled" true !seen

let test_scrambled_spreads () =
  let rng = Random.State.make [| 6 |] in
  let d = D.scrambled_zipfian 1000 in
  let h = histogram d rng ~draws:20000 ~n:1000 in
  (* The hottest key should not be key 0 — scrambling moved it. *)
  let hottest = ref 0 in
  Array.iteri (fun i c -> if c > h.(!hottest) then hottest := i) h;
  check_bool "hot key scrambled away from rank order" true (!hottest <> 0)

let test_hotspot_concentrates () =
  let rng = Random.State.make [| 7 |] in
  let d = D.hotspot ~hot_frac:0.01 ~op_frac:0.9 1000 in
  check_int "hot set size" 10 (D.hot_set_size d);
  let h = histogram d rng ~draws:20000 ~n:1000 in
  let hot = Array.fold_left ( + ) 0 (Array.sub h 0 10) in
  check_bool "hot 1% of keys take ~90% of draws" true
    (abs (hot - 18000) < 500)

let test_hotspot_grow_stays_cold () =
  let rng = Random.State.make [| 8 |] in
  let d = D.hotspot ~hot_frac:0.1 ~op_frac:0.5 10 in
  D.grow d;
  check_int "population grows" 11 (D.population d);
  check_int "hot set fixed" 1 (D.hot_set_size d);
  for _ = 1 to 500 do
    let x = D.sample d rng in
    if x < 0 || x >= 11 then Alcotest.fail "out of range after grow"
  done

(* The documented parameter domains: hot_frac in (0, 1], op_frac in
   [0, 1].  Outside them the constructor rejects; on the boundaries the
   generator degenerates to a well-defined distribution rather than
   dividing by an empty set. *)
let test_hotspot_boundaries () =
  let rejects name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  rejects "hot_frac = 0" (fun () -> D.hotspot ~hot_frac:0.0 100);
  rejects "hot_frac < 0" (fun () -> D.hotspot ~hot_frac:(-0.5) 100);
  rejects "hot_frac > 1" (fun () -> D.hotspot ~hot_frac:1.5 100);
  rejects "op_frac < 0" (fun () -> D.hotspot ~op_frac:(-0.1) 100);
  rejects "op_frac > 1" (fun () -> D.hotspot ~op_frac:1.1 100);
  let rng = Random.State.make [| 9 |] in
  (* op_frac = 1: every draw lands in the hot set. *)
  let all_hot = D.hotspot ~hot_frac:0.1 ~op_frac:1.0 100 in
  for _ = 1 to 500 do
    let x = D.sample all_hot rng in
    if x >= D.hot_set_size all_hot then
      Alcotest.failf "op_frac=1 drew cold key %d" x
  done;
  (* op_frac = 0: every draw lands in the cold remainder. *)
  let all_cold = D.hotspot ~hot_frac:0.1 ~op_frac:0.0 100 in
  for _ = 1 to 500 do
    let x = D.sample all_cold rng in
    if x < D.hot_set_size all_cold || x >= 100 then
      Alcotest.failf "op_frac=0 drew key %d outside the cold set" x
  done;
  (* hot_frac = 1: the whole population is hot; the cold branch is
     empty and sampling stays uniform over [0, n). *)
  let whole = D.hotspot ~hot_frac:1.0 ~op_frac:0.5 20 in
  check_int "hot set is the population" 20 (D.hot_set_size whole);
  for _ = 1 to 500 do
    let x = D.sample whole rng in
    if x < 0 || x >= 20 then Alcotest.failf "hot_frac=1 drew %d" x
  done

let count_ops spec =
  let reads = ref 0 and updates = ref 0 and inserts = ref 0 in
  W.iter_ops spec (function
    | W.Read _ -> incr reads
    | W.Update _ -> incr updates
    | W.Insert _ -> incr inserts
    | W.Scan _ | W.Rmw _ -> ());
  (!reads, !updates, !inserts)

let test_paper_mix () =
  let spec = { W.paper_default with W.operation_count = 20000 } in
  let reads, updates, inserts = count_ops spec in
  check_int "total" 20000 (reads + updates + inserts);
  check_int "no updates in the paper mix" 0 updates;
  check_bool "~95% reads" true (abs (reads - 19000) < 300);
  check_bool "~5% inserts" true (abs (inserts - 1000) < 300)

let test_workload_a_mix () =
  let spec = { W.workload_a with W.operation_count = 20000 } in
  let reads, updates, inserts = count_ops spec in
  check_int "no inserts in A" 0 inserts;
  check_bool "~50/50" true (abs (reads - updates) < 800)

let test_serving_mixes () =
  let mixes = W.serving_mixes ~records:1000 ~ops:20000 in
  check_int "four mixes" 4 (List.length mixes);
  let spec name = List.assoc name mixes in
  (* scan-heavy: about half the ops are scans, all in range. *)
  let scans = ref 0 and total = ref 0 and ok = ref true in
  W.iter_ops (spec "scan-heavy") (fun op ->
      incr total;
      match op with
      | W.Scan (start, len) ->
          incr scans;
          if start < 0 || len < 1 || len > 16 then ok := false
      | _ -> ());
  check_bool "scan bounds" true !ok;
  check_bool "~50% scans" true (abs (!scans - !total / 2) < 800);
  (* rmw-heavy: about half RMW. *)
  let rmws = ref 0 in
  W.iter_ops (spec "rmw-heavy") (function
    | W.Rmw _ -> incr rmws
    | _ -> ());
  check_bool "~50% rmw" true (abs (!rmws - 10000) < 800);
  (* hot-storm: 90% of single-key ops land on the 1-key-in-1000 hot set. *)
  let hot_n = max 1 (int_of_float (0.001 *. 1000.)) in
  let hot_keys = Hashtbl.create 8 in
  for i = 0 to hot_n - 1 do
    Hashtbl.replace hot_keys (W.key_of_index i) ()
  done;
  let hot = ref 0 and singles = ref 0 in
  W.iter_ops (spec "hot-storm") (function
    | W.Read k | W.Update (k, _) ->
        incr singles;
        if Hashtbl.mem hot_keys k then incr hot
    | _ -> ());
  check_bool "~90% of ops hit the hot set" true
    (abs (!hot * 10 - !singles * 9) < !singles)

let test_idx_ops_mirror () =
  (* iter_idx_ops and iter_ops must describe the same stream. *)
  let spec =
    List.assoc "scan-heavy" (W.serving_mixes ~records:500 ~ops:2000)
  in
  let a = ref [] and b = ref [] in
  W.iter_ops spec (fun op -> a := op :: !a);
  W.iter_idx_ops spec (fun iop ->
      b :=
        (match iop with
        | W.IRead i -> W.Read (W.key_of_index i)
        | W.IUpdate (i, v) -> W.Update (W.key_of_index i, Int64.of_int v)
        | W.IInsert (i, v) -> W.Insert (W.key_of_index i, Int64.of_int v)
        | W.IScan (s, l) -> W.Scan (s, l)
        | W.IRmw (i, v) -> W.Rmw (W.key_of_index i, Int64.of_int v))
        :: !b);
  check_bool "index stream mirrors key stream" true (!a = !b)

let test_deterministic () =
  let collect () =
    let acc = ref [] in
    W.iter_ops { W.paper_default with W.operation_count = 500 } (fun op ->
        acc := op :: !acc);
    !acc
  in
  check_bool "same seed, same stream" true (collect () = collect ())

let test_inserts_get_fresh_keys () =
  let seen = Hashtbl.create 64 in
  for i = 0 to 999 do
    Hashtbl.replace seen (W.key_of_index i) ()
  done;
  check_int "1000 distinct keys" 1000 (Hashtbl.length seen);
  let fresh = ref true in
  W.iter_ops
    { W.paper_default with W.record_count = 1000; W.operation_count = 2000 }
    (function
      | W.Insert (k, _) ->
          if Hashtbl.mem seen k then fresh := false
          else Hashtbl.replace seen k ()
      | W.Read _ | W.Update _ | W.Scan _ | W.Rmw _ -> ());
  check_bool "inserts always use unseen keys" true !fresh

let test_reads_hit_existing () =
  (* Every key read must have been loaded or inserted before. *)
  let exists = Hashtbl.create 64 in
  let spec = { W.paper_default with W.record_count = 100; W.operation_count = 5000 } in
  for i = 0 to spec.W.record_count - 1 do
    Hashtbl.replace exists (W.key_of_index i) ()
  done;
  let ok = ref true in
  W.iter_ops spec (function
    | W.Read k -> if not (Hashtbl.mem exists k) then ok := false
    | W.Insert (k, _) -> Hashtbl.replace exists k ()
    | W.Update (k, _) | W.Rmw (k, _) ->
        if not (Hashtbl.mem exists k) then ok := false
    | W.Scan (start, len) ->
        for j = start to start + len - 1 do
          if not (Hashtbl.mem exists (W.key_of_index j)) then ok := false
        done);
  check_bool "reads and updates always hit live keys" true !ok

let prop_zipf_bounds =
  QCheck.Test.make ~name:"zipfian samples stay in range" ~count:100
    QCheck.(pair (int_range 1 500) (int_bound 1000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let d = D.zipfian n in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = D.sample d rng in
        if x < 0 || x >= n then ok := false
      done;
      !ok)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_zipf_bounds ]

let () =
  Alcotest.run "ycsb"
    [
      ( "distributions",
        [
          Alcotest.test_case "uniform range" `Quick test_uniform_in_range;
          Alcotest.test_case "uniform flat" `Quick test_uniform_roughly_flat;
          Alcotest.test_case "zipfian skew" `Quick test_zipfian_skew;
          Alcotest.test_case "latest recent" `Quick test_latest_prefers_recent;
          Alcotest.test_case "latest grows" `Quick test_latest_grows;
          Alcotest.test_case "scrambled" `Quick test_scrambled_spreads;
          Alcotest.test_case "hotspot skew" `Quick test_hotspot_concentrates;
          Alcotest.test_case "hotspot grow" `Quick
            test_hotspot_grow_stays_cold;
          Alcotest.test_case "hotspot boundaries" `Quick
            test_hotspot_boundaries;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "paper mix" `Quick test_paper_mix;
          Alcotest.test_case "workload A mix" `Quick test_workload_a_mix;
          Alcotest.test_case "serving mixes" `Quick test_serving_mixes;
          Alcotest.test_case "idx ops mirror" `Quick test_idx_ops_mirror;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "fresh insert keys" `Quick
            test_inserts_get_fresh_keys;
          Alcotest.test_case "reads hit live keys" `Quick
            test_reads_hit_existing;
        ] );
      ("properties", qsuite);
    ]
