(* Tests for the domain worker pool and the determinism contract the
   parallel experiment engine depends on: a simulation cell run on a
   worker domain must produce bit-identical results to the same cell
   run sequentially. *)

module Pool = Nvml_exec.Pool
module Cpu = Nvml_arch.Cpu
module Runtime = Nvml_runtime.Runtime
module Harness = Nvml_kvstore.Harness
module Workload = Nvml_ycsb.Workload

let check = Alcotest.check
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_pool ?jobs f =
  let pool = Pool.create ?jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* --- pool mechanics ---------------------------------------------------- *)

let test_results_in_order () =
  with_pool ~jobs:4 (fun pool ->
      let xs = List.init 50 Fun.id in
      check
        Alcotest.(list int)
        "map preserves submission order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs))

let test_empty_run () =
  with_pool ~jobs:4 (fun pool ->
      check_int "empty task list" 0 (List.length (Pool.run pool [])))

let test_sequential_pool_is_inline () =
  with_pool ~jobs:1 (fun pool ->
      check_int "jobs" 1 (Pool.jobs pool);
      (* At jobs=1 tasks run inline in the calling domain, so they can
         see calling-domain state mutated between submissions. *)
      let trace = ref [] in
      let out =
        Pool.run pool
          (List.init 5 (fun i () ->
               trace := i :: !trace;
               i))
      in
      check Alcotest.(list int) "inline results" [ 0; 1; 2; 3; 4 ] out;
      check Alcotest.(list int) "inline order" [ 4; 3; 2; 1; 0 ] !trace)

exception Boom of int

let test_exception_propagation () =
  with_pool ~jobs:3 (fun pool ->
      Alcotest.check_raises "earliest failure wins" (Boom 2) (fun () ->
          ignore
            (Pool.run pool
               (List.init 10 (fun i () ->
                    if i >= 2 && i <= 4 then raise (Boom i) else i))));
      (* The pool must survive a failed batch and stay usable. *)
      check
        Alcotest.(list int)
        "pool reusable after failure" [ 1; 2; 3 ]
        (Pool.map pool Fun.id [ 1; 2; 3 ]))

let test_reuse_across_runs () =
  with_pool ~jobs:2 (fun pool ->
      for round = 1 to 5 do
        let out = Pool.map pool (fun x -> x + round) [ 10; 20; 30 ] in
        check
          Alcotest.(list int)
          (Printf.sprintf "round %d" round)
          [ 10 + round; 20 + round; 30 + round ]
          out
      done)

let test_run_after_shutdown_rejected () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  check_bool "rejects run after shutdown" true
    (try
       ignore (Pool.run pool [ (fun () -> 1) ]);
       false
     with Invalid_argument _ -> true)

let test_default_jobs_positive () =
  check_bool "default jobs >= 1" true (Pool.default_jobs () >= 1)

(* --- determinism: parallel == sequential -------------------------------- *)

(* A miniature fig11-style matrix: every (structure, mode) cell builds
   its own private machine, so worker placement must not matter. *)
let spec =
  { Workload.paper_default with Workload.record_count = 300; operation_count = 3_000 }

let cells =
  List.concat_map
    (fun name ->
      List.map
        (fun mode -> (name, mode))
        [ Runtime.Volatile; Runtime.Explicit; Runtime.Sw; Runtime.Hw ])
    [ "Hash"; "RB" ]

let fingerprint (r : Harness.result) =
  let s = r.Harness.run in
  ( ( s.Cpu.cycles,
      s.Cpu.instrs,
      s.Cpu.loads,
      s.Cpu.stores,
      s.Cpu.storeps,
      s.Cpu.nvm_accesses,
      s.Cpu.dram_accesses ),
    ( s.Cpu.branches,
      s.Cpu.branch_mispredicts,
      s.Cpu.polb_accesses,
      s.Cpu.polb_misses,
      s.Cpu.valb_accesses,
      s.Cpu.valb_misses ),
    ( r.Harness.checks.Harness.dynamic_checks,
      r.Harness.checks.Harness.abs_to_rel,
      r.Harness.checks.Harness.rel_to_abs,
      r.Harness.hits,
      r.Harness.misses ) )

let run_cells pool =
  Pool.map pool
    (fun (name, mode) -> fingerprint (Harness.run_benchmark name ~mode spec))
    cells

let test_parallel_bit_identical () =
  let seq = with_pool ~jobs:1 run_cells in
  let par = with_pool ~jobs:4 run_cells in
  List.iteri
    (fun i ((name, mode), (s, p)) ->
      check_bool
        (Printf.sprintf "cell %d (%s/%s) identical" i name
           (Runtime.mode_name mode))
        true (s = p))
    (List.combine cells (List.combine seq par))

let test_parallel_repeatable () =
  (* Two parallel runs of the same cells must also agree with each
     other (no hidden shared state between cells). *)
  let a = with_pool ~jobs:4 run_cells in
  let b = with_pool ~jobs:4 run_cells in
  check_bool "parallel runs repeatable" true (a = b)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "results in order" `Quick test_results_in_order;
          Alcotest.test_case "empty run" `Quick test_empty_run;
          Alcotest.test_case "jobs=1 inline" `Quick
            test_sequential_pool_is_inline;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "reuse across runs" `Quick test_reuse_across_runs;
          Alcotest.test_case "shutdown" `Quick test_run_after_shutdown_rejected;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel == sequential" `Slow
            test_parallel_bit_identical;
          Alcotest.test_case "parallel repeatable" `Slow
            test_parallel_repeatable;
        ] );
    ]
