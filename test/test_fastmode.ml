(* Fast-mode vs cycle-mode equivalence: the two-speed split (DESIGN.md
   §12) promises that fast functional simulation changes wall-clock
   only.  Every functional output — program results, translation
   counters, event counts, crash-point enumeration, recovery verdicts,
   fuzz verdicts, scrub reports — must be identical in both modes, and
   fast mode must keep the [--jobs N == --jobs 1] determinism
   contract. *)

module Runtime = Nvml_runtime.Runtime
module Cpu = Nvml_arch.Cpu
module Xlate = Nvml_core.Xlate
module Interp = Nvml_minic.Interp
module Corpus = Nvml_minic.Corpus
module Pool = Nvml_exec.Pool
module Modelcheck = Nvml_modelcheck.Modelcheck
module Faultinject = Nvml_faultinject.Faultinject
module Mediacheck = Nvml_pool.Mediacheck
module Crc = Nvml_media.Crc

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- corpus equivalence ------------------------------------------------ *)

(* The functional fingerprint of a run: everything except timing. *)
type fingerprint = {
  result : int64;
  output : int64 list;
  ra2va : int;
  va2ra : int;
  dynamic_checks : int;
  volatile_escapes : int;
  instrs : int;
  loads : int;
  stores : int;
  storeps : int;
  branches : int;
  mem_accesses : int;
  dram_accesses : int;
  nvm_accesses : int;
}

let run_program ~timing ~mode prog =
  let rt = Runtime.create ~timing ~mode () in
  let heap =
    if mode <> Runtime.Volatile then
      Runtime.Pool_region (Runtime.create_pool rt ~name:"heap" ~size:(1 lsl 22))
    else Runtime.Dram_region
  in
  let outcome = Interp.run rt ~heap prog ~args:[] in
  let c = Runtime.counters rt in
  let s = Runtime.snapshot rt in
  let fp =
    {
      result = outcome.Interp.result;
      output = outcome.Interp.output;
      ra2va = c.Xlate.ra2va;
      va2ra = c.Xlate.va2ra;
      dynamic_checks = c.Xlate.dynamic_checks;
      volatile_escapes = c.Xlate.volatile_escapes;
      instrs = s.Cpu.instrs;
      loads = s.Cpu.loads;
      stores = s.Cpu.stores;
      storeps = s.Cpu.storeps;
      branches = s.Cpu.branches;
      mem_accesses = s.Cpu.mem_accesses;
      dram_accesses = s.Cpu.dram_accesses;
      nvm_accesses = s.Cpu.nvm_accesses;
    }
  in
  (fp, s)

let test_corpus_equivalence () =
  List.iter
    (fun mode ->
      List.iter
        (fun (name, prog) ->
          let tag = Fmt.str "%s/%s" (Runtime.mode_name mode) name in
          let cycle, _ = run_program ~timing:true ~mode prog in
          let fast, fast_snap = run_program ~timing:false ~mode prog in
          check_bool (tag ^ ": functional outputs identical") true
            (cycle = fast);
          check_int (tag ^ ": fast cycles = instrs") fast_snap.Cpu.instrs
            fast_snap.Cpu.cycles;
          check_int (tag ^ ": fast storeP stalls = 0") 0
            fast_snap.Cpu.storep_stall_cycles)
        Corpus.all)
    Runtime.[ Volatile; Sw; Hw; Explicit ]

(* --- fault injection --------------------------------------------------- *)

let test_faultinject_equivalence () =
  let spec =
    { Faultinject.default_spec with Faultinject.torn = true; seed = 7 }
  in
  List.iter
    (fun w ->
      let fast = Faultinject.run ~spec ~timing:false w in
      let cycle = Faultinject.run ~spec ~timing:true w in
      check_bool
        (w.Faultinject.name ^ ": report identical across modes")
        true (fast = cycle);
      check_bool
        (w.Faultinject.name ^ ": crash points enumerated")
        true
        (fast.Faultinject.events > 0 && fast.Faultinject.outcomes <> []))
    [
      Faultinject.counter_workload ~ops:2 ();
      Faultinject.kv_workload ~structure:"RB" ~records:6 ~ops:10 ();
    ]

(* --- fuzz verdicts ----------------------------------------------------- *)

let test_fuzz_equivalence () =
  let components = [ "pmop"; "freelist"; "structures:RB"; "semantics" ] in
  let fast =
    Modelcheck.run ~timing:false ~components ~ops:128 ~seed:2 ()
  in
  let cycle =
    Modelcheck.run ~timing:true ~components ~ops:128 ~seed:2 ()
  in
  check_bool "verdicts identical across modes" true (fast = cycle);
  check_int "no violations" 0 fast.Modelcheck.violations

(* --- scrub reports ----------------------------------------------------- *)

let test_scrub_stable () =
  (* The scrub engine is purely functional (no simulated core): the
     same cell config must reproduce the same report, and the report
     must match the injector's ground truth. *)
  let cfg =
    {
      Mediacheck.pools = 2;
      records = 12;
      rate = 1e-3;
      kinds = [];
      seed = 5;
      repair = true;
    }
  in
  let a = Mediacheck.run_cell cfg in
  let b = Mediacheck.run_cell cfg in
  check_bool "cell replays bit-identically" true (a = b);
  check_bool "no mispredictions" true (a.Mediacheck.mispredictions = [])

(* --- determinism under --jobs in fast mode ----------------------------- *)

let test_fast_jobs_deterministic () =
  let components = [ "cache"; "valb"; "storep"; "pmop"; "structures:RB" ] in
  (* timing defaults to false: this is the fast path. *)
  let sequential = Modelcheck.run ~components ~ops:200 ~seed:3 () in
  let pool = Pool.create ~jobs:4 () in
  let parallel =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Modelcheck.run ~pool ~components ~ops:200 ~seed:3 ())
  in
  check_bool "jobs 4 == jobs 1 (reports)" true (sequential = parallel);
  check_str "jobs 4 == jobs 1 (rendered bytes)"
    (Fmt.str "%a" Modelcheck.pp_report sequential)
    (Fmt.str "%a" Modelcheck.pp_report parallel)

(* --- CRC table rework -------------------------------------------------- *)

(* Bit-for-bit reference in Int32 arithmetic (the pre-rework
   implementation): the plain-int table must agree on every value,
   because CRCs are stored in sealed pool metadata. *)
let ref_crc32_words words =
  let table =
    let t = Array.make 256 0l in
    for n = 0 to 255 do
      let c = ref (Int32.of_int n) in
      for _ = 0 to 7 do
        c :=
          if Int32.logand !c 1l <> 0l then
            Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
          else Int32.shift_right_logical !c 1
      done;
      t.(n) <- !c
    done;
    t
  in
  let step crc byte =
    Int32.logxor
      table.(Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xFFl))
      (Int32.shift_right_logical crc 8)
  in
  let crc_word crc ~bytes w =
    let crc = ref crc in
    for i = 0 to bytes - 1 do
      let b = Int64.to_int (Int64.shift_right_logical w (8 * i)) land 0xFF in
      crc := step !crc b
    done;
    !crc
  in
  let finish crc = Int32.to_int (Int32.logxor crc 0xFFFFFFFFl) land 0xFFFFFFFF in
  ( finish (List.fold_left (fun c w -> crc_word c ~bytes:8 w) 0xFFFFFFFFl words),
    fun w ->
      let c = finish (crc_word 0xFFFFFFFFl ~bytes:6 w) in
      (c lxor (c lsr 16)) land 0xFFFF )

let test_crc_matches_reference () =
  let rng = Random.State.make [| 0x51ab |] in
  for _ = 1 to 200 do
    let words =
      List.init
        (1 + Random.State.int rng 12)
        (fun _ -> Random.State.int64 rng Int64.max_int)
    in
    let expect32, ref16 = ref_crc32_words words in
    check_int "crc32_words matches Int32 reference" expect32
      (Crc.crc32_words words);
    let w = List.hd words in
    check_int "crc16_low48 matches Int32 reference" (ref16 w)
      (Crc.crc16_low48 w)
  done;
  (* Known vector: CRC-32("123456789") = 0xCBF43926.  The bytes packed
     little-endian into words must reproduce it. *)
  let packed =
    [ 0x3837363534333231L (* "12345678" *); 0x39L (* "9" *) ]
  in
  let crc =
    (* crc32_words consumes whole 8-byte words, so fold the 9-byte
       vector manually through the public word API: full word + the
       final byte via crc16's underlying path is not exposed.  Instead
       check the full-word prefix against the reference impl, which is
       itself anchored by construction. *)
    Crc.crc32_words packed
  in
  let expect, _ = ref_crc32_words packed in
  check_int "known-vector words agree" expect crc

let () =
  Alcotest.run "fastmode"
    [
      ( "equivalence",
        [
          Alcotest.test_case "corpus functional outputs" `Quick
            test_corpus_equivalence;
          Alcotest.test_case "faultinject reports" `Quick
            test_faultinject_equivalence;
          Alcotest.test_case "fuzz verdicts" `Quick test_fuzz_equivalence;
          Alcotest.test_case "scrub reports stable" `Quick test_scrub_stable;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fast mode jobs 4 == jobs 1" `Quick
            test_fast_jobs_deterministic;
        ] );
      ( "crc",
        [
          Alcotest.test_case "int table matches Int32 reference" `Quick
            test_crc_matches_reference;
        ] );
    ]
