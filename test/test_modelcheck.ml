(* Regression tests for the PR's bug fixes (each written to fail on the
   pre-fix code, whose behaviour stays reachable through the quirk
   hooks), plus sanity tests for the model-check engine itself. *)

module Cache = Nvml_arch.Cache
module Valb = Nvml_arch.Valb
module Freelist = Nvml_pool.Freelist
module D = Nvml_ycsb.Distribution
module Pool = Nvml_exec.Pool
module Engine = Nvml_modelcheck.Engine
module Modelcheck = Nvml_modelcheck.Modelcheck

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- cache: invalidate must release the way ---------------------------- *)

(* Pre-fix, [invalidate] cleared the tag but left the LRU stamp, so the
   refill after an invalidate evicted a *valid* line (its stamp was
   older than the invalid way's stale one). *)
let test_cache_invalidate_then_refill () =
  let c = Cache.create ~sets:1 ~ways:2 ~index_shift:6 in
  ignore (Cache.access c 0x000) (* A -> way 0 *);
  ignore (Cache.access c 0x040) (* B -> way 1 *);
  ignore (Cache.access c 0x000) (* touch A: B is LRU *);
  Cache.invalidate c 0x000;
  ignore (Cache.access c 0x080) (* C must take A's freed way *);
  check_bool "B survives the refill" true (Cache.probe c 0x040);
  check_bool "C is resident" true (Cache.probe c 0x080);
  check_bool "A is gone" false (Cache.probe c 0x000)

(* The same sequence under the quirk documents the historical bug the
   fuzzer's --break self-test plants. *)
let test_cache_quirk_reproduces_bug () =
  let c = Cache.create ~sets:1 ~ways:2 ~index_shift:6 in
  Cache.enable_quirk c Cache.Stale_invalidate_stamp;
  ignore (Cache.access c 0x000);
  ignore (Cache.access c 0x040);
  ignore (Cache.access c 0x000);
  Cache.invalidate c 0x000;
  ignore (Cache.access c 0x080);
  check_bool "pre-fix: valid B was evicted" false (Cache.probe c 0x040)

(* --- valb: dedup and shootdown stamps ---------------------------------- *)

(* Pre-fix, repeated VAW refills for one pool occupied several CAM ways. *)
let test_valb_duplicate_refill () =
  let v = Valb.create ~entries:4 in
  Valb.insert v ~base:0x1000L ~size:0x1000L ~pool:1;
  Valb.insert v ~base:0x1000L ~size:0x1000L ~pool:1;
  Valb.insert v ~base:0x2000L ~size:0x1000L ~pool:1 (* remap, same pool *);
  let ways = List.filter (fun (_, _, p, _) -> p = 1) (Valb.dump v) in
  check_int "one way per pool" 1 (List.length ways);
  (match ways with
  | [ (base, _, _, _) ] ->
      Alcotest.(check int64) "refresh took the remapped base" 0x2000L base
  | _ -> Alcotest.fail "expected exactly one way");
  check_bool "old range no longer hits" true (Valb.lookup v 0x1234L = None)

let test_valb_quirk_duplicates () =
  let v = Valb.create ~entries:4 in
  Valb.enable_quirk v Valb.Duplicate_insert;
  Valb.insert v ~base:0x1000L ~size:0x1000L ~pool:1;
  Valb.insert v ~base:0x1000L ~size:0x1000L ~pool:1;
  let ways = List.filter (fun (_, _, p, _) -> p = 1) (Valb.dump v) in
  check_int "pre-fix: pool occupies two ways" 2 (List.length ways)

(* Pre-fix, a shootdown left the invalidated way's stamp in place, so
   the next refill evicted a valid entry instead of reusing the way. *)
let test_valb_shootdown_then_refill () =
  let v = Valb.create ~entries:2 in
  Valb.insert v ~base:0x1000L ~size:0x1000L ~pool:1;
  Valb.insert v ~base:0x2000L ~size:0x1000L ~pool:2;
  ignore (Valb.lookup v 0x1800L) (* touch pool 1: pool 2 is LRU *);
  Valb.invalidate_pool v 1;
  Valb.insert v ~base:0x3000L ~size:0x1000L ~pool:3;
  check_bool "pool 2 survives the refill" true (Valb.lookup v 0x2800L = Some 2);
  check_bool "pool 3 is resident" true (Valb.lookup v 0x3800L = Some 3)

let test_valb_quirk_stale_shootdown () =
  let v = Valb.create ~entries:2 in
  Valb.enable_quirk v Valb.Stale_invalidate_stamp;
  Valb.insert v ~base:0x1000L ~size:0x1000L ~pool:1;
  Valb.insert v ~base:0x2000L ~size:0x1000L ~pool:2;
  ignore (Valb.lookup v 0x1800L);
  Valb.invalidate_pool v 1;
  Valb.insert v ~base:0x3000L ~size:0x1000L ~pool:3;
  check_bool "pre-fix: valid pool 2 was evicted" true
    (Valb.lookup v 0x2800L = None)

(* --- freelist: interior pointers and heap tiling ------------------------ *)

let make_arena () =
  let words : (int64, int64) Hashtbl.t = Hashtbl.create 64 in
  {
    Freelist.read =
      (fun off -> Option.value ~default:0L (Hashtbl.find_opt words off));
    write = (fun off v -> Hashtbl.replace words off v);
  }

(* Pre-fix, [free] validated only the block start, so an interior
   pointer landing on application bytes that spell an allocated header
   with a size running past the arena end was accepted — corrupting the
   accounting and chaining a bogus block into the free list.  The
   header checksum now rejects the phantom header one layer earlier:
   application bytes that happen to parse as a size will not also carry
   a matching CRC. *)
let test_freelist_rejects_interior_pointer () =
  let a = make_arena () in
  Freelist.init a ~capacity:4096L;
  let p = Freelist.alloc a 100L in
  (* Application bytes at p+8 that look like an allocated 8192-byte
     block; the bogus payload starts header_size past them. *)
  a.Freelist.write (Int64.add p 8L) (Int64.logor 8192L 1L);
  let bogus = Int64.add p (Int64.add 8L Freelist.header_size) in
  Alcotest.check_raises "interior pointer rejected"
    (Freelist.Corrupt_arena
       (Fmt.str "block header at %Ld fails its checksum"
          (Int64.sub bogus Freelist.header_size)))
    (fun () -> Freelist.free a bogus);
  ignore (Freelist.check_invariants a)

(* The extended invariant check recomputes the allocated accounting by
   tiling the whole heap, so silent header corruption is caught even
   though the free list itself still parses. *)
let test_freelist_tiling_catches_header_corruption () =
  let a = make_arena () in
  Freelist.init a ~capacity:4096L;
  let p = Freelist.alloc a 48L in
  let _q = Freelist.alloc a 48L in
  ignore (Freelist.check_invariants a) (* sane before the corruption *);
  let header = Int64.sub p Freelist.header_size in
  a.Freelist.write header (Int64.logor 96L 1L) (* grow 64 -> 96 *);
  check_bool "corruption detected" true
    (match Freelist.check_invariants a with
    | _ -> false
    | exception Freelist.Corrupt_arena _ -> true)

(* --- ycsb: closed-form rank probabilities ------------------------------- *)

let zeta n =
  let s = ref 0.0 in
  for i = 1 to n do
    s := !s +. (1.0 /. Float.pow (float_of_int i) D.theta)
  done;
  !s

let test_zipfian_rank_frequencies () =
  let n = 100 in
  let draws = 20_000 in
  let d = D.zipfian n in
  let rng = Random.State.make [| 42 |] in
  let r0 = ref 0 and r1 = ref 0 in
  for _ = 1 to draws do
    match D.sample d rng with
    | 0 -> incr r0
    | 1 -> incr r1
    | _ -> ()
  done;
  let zn = zeta n in
  let freq c = float_of_int !c /. float_of_int draws in
  let near what expected got =
    if Float.abs (got -. expected) > 0.015 then
      Alcotest.failf "%s: frequency %.4f, closed form %.4f" what got expected
  in
  near "rank 0" (1.0 /. zn) (freq r0);
  near "rank 1" (Float.pow 0.5 D.theta /. zn) (freq r1)

(* --- engine: shrinking and determinism ---------------------------------- *)

(* A planted harness that fails exactly when the third [`Boom] lands:
   shrinking must strip every [`Inc] and keep precisely three booms. *)
let boom_harness =
  Engine.Packed
    {
      Engine.component = "test-boom";
      gen =
        (fun rng ->
          if Random.State.int rng 100 < 30 then `Boom else `Inc);
      pp = (function `Boom -> "boom" | `Inc -> "inc");
      init =
        (fun ~seed:_ ->
          let booms = ref 0 in
          fun op ->
            if op = `Boom then begin
              incr booms;
              if !booms >= 3 then
                raise (Engine.Violation "three booms")
            end);
    }

let test_engine_shrinks_to_minimum () =
  let r = Engine.run boom_harness ~ops:300 ~seed:5 in
  match r.Engine.violation with
  | None -> Alcotest.fail "expected a violation"
  | Some v ->
      check_int "minimal counterexample" 3 (List.length v.Engine.trace);
      check_bool "only booms survive shrinking" true
        (List.for_all (( = ) "boom") v.Engine.trace);
      check_bool "shrunk from a longer prefix" true
        (v.Engine.shrunk_from > 3)

let test_engine_replay_deterministic () =
  let a = Engine.run boom_harness ~ops:300 ~seed:5 in
  let b = Engine.run boom_harness ~ops:300 ~seed:5 in
  check_bool "same seed, same result" true (a = b)

(* --- driver: --break self-test and parallel determinism ------------------ *)

let mech = [ "cache"; "valb"; "storep"; "freelist" ]

let test_break_finds_planted_bugs () =
  let report =
    Modelcheck.run ~break:true ~components:mech ~ops:600 ~seed:1 ()
  in
  check_bool "both planted bugs found, clean components quiet" true
    (Modelcheck.break_run_ok report);
  check_int "exactly the two quirky components violate" 2
    report.Modelcheck.violations

let test_fixed_components_survive_break_seeds () =
  (* With the fixes in, a multi-seed sweep must stay quiet. *)
  for seed = 1 to 5 do
    let report = Modelcheck.run ~components:mech ~ops:400 ~seed () in
    check_int (Fmt.str "seed %d clean" seed) 0 report.Modelcheck.violations
  done

let test_parallel_matches_sequential () =
  let components = mech @ [ "vatb"; "pmop"; "zipf" ] in
  let sequential = Modelcheck.run ~components ~ops:300 ~seed:3 () in
  let pool = Pool.create ~jobs:4 () in
  let parallel =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Modelcheck.run ~pool ~components ~ops:300 ~seed:3 ())
  in
  check_bool "jobs 4 == jobs 1" true (sequential = parallel)

let () =
  Alcotest.run "modelcheck"
    [
      ( "regressions",
        [
          Alcotest.test_case "cache invalidate then refill" `Quick
            test_cache_invalidate_then_refill;
          Alcotest.test_case "cache quirk reproduces bug" `Quick
            test_cache_quirk_reproduces_bug;
          Alcotest.test_case "valb duplicate refill" `Quick
            test_valb_duplicate_refill;
          Alcotest.test_case "valb quirk duplicates" `Quick
            test_valb_quirk_duplicates;
          Alcotest.test_case "valb shootdown then refill" `Quick
            test_valb_shootdown_then_refill;
          Alcotest.test_case "valb quirk stale shootdown" `Quick
            test_valb_quirk_stale_shootdown;
          Alcotest.test_case "freelist rejects interior pointer" `Quick
            test_freelist_rejects_interior_pointer;
          Alcotest.test_case "freelist tiling catches corruption" `Quick
            test_freelist_tiling_catches_header_corruption;
          Alcotest.test_case "zipfian rank frequencies" `Quick
            test_zipfian_rank_frequencies;
        ] );
      ( "engine",
        [
          Alcotest.test_case "shrinks to minimum" `Quick
            test_engine_shrinks_to_minimum;
          Alcotest.test_case "replay deterministic" `Quick
            test_engine_replay_deterministic;
        ] );
      ( "driver",
        [
          Alcotest.test_case "--break finds planted bugs" `Quick
            test_break_finds_planted_bugs;
          Alcotest.test_case "fixed components survive seeds" `Quick
            test_fixed_components_survive_break_seeds;
          Alcotest.test_case "parallel matches sequential" `Quick
            test_parallel_matches_sequential;
        ] );
    ]
