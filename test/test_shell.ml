(* Tests for the interactive persistent KV shell, driven directly
   through the command interpreter. *)

module Shell = Nvml_kvstore.Shell
module Runtime = Nvml_runtime.Runtime

let check_bool = Alcotest.(check bool)
let check_lines = Alcotest.(check (list string))

let exec = Shell.exec

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_put_get_del () =
  let s = Shell.create () in
  check_lines "put" [ "ok" ] (exec s "put 1 100");
  check_lines "get hit" [ "100" ] (exec s "get 1");
  check_lines "get miss" [ "(not found)" ] (exec s "get 2");
  check_lines "overwrite" [ "ok" ] (exec s "put 1 101");
  check_lines "updated" [ "101" ] (exec s "get 1");
  check_lines "del" [ "ok" ] (exec s "del 1");
  check_lines "del again" [ "(not found)" ] (exec s "del 1");
  check_lines "size" [ "0" ] (exec s "size")

let test_keys_sorted () =
  let s = Shell.create () in
  List.iter (fun k -> ignore (exec s (Printf.sprintf "put %d %d" k k)))
    [ 5; 1; 3; 2; 4 ];
  check_lines "keys ascending" [ "1"; "2"; "3"; "4"; "5" ] (exec s "keys");
  check_lines "empty list message" [ "(empty)" ]
    (exec (Shell.create ()) "keys")

let test_crash_persistence () =
  let s = Shell.create () in
  for i = 1 to 50 do
    ignore (exec s (Printf.sprintf "put %d %d" i (i * 2)))
  done;
  (match exec s "crash" with
  | [ line ] ->
      check_bool "recovery message mentions 50 keys" true
        (contains ~needle:"50 keys intact" line)
  | other -> Alcotest.failf "unexpected crash reply: %d lines" (List.length other));
  check_lines "value survives" [ "84" ] (exec s "get 42");
  check_lines "size survives" [ "50" ] (exec s "size");
  (* Mutations after recovery, then crash again. *)
  ignore (exec s "put 51 102");
  ignore (exec s "del 1");
  ignore (exec s "crash");
  check_lines "post-recovery insert survives" [ "102" ] (exec s "get 51");
  check_lines "post-recovery delete survives" [ "(not found)" ] (exec s "get 1")

let test_errors () =
  let s = Shell.create () in
  check_lines "bad int" [ "error: not an integer: \"x\"" ] (exec s "put x 1");
  (match exec s "frobnicate" with
  | [ line ] ->
      check_bool "unknown command" true
        (contains ~needle:"unknown command" line)
  | _ -> Alcotest.fail "expected one line");
  check_lines "blank is silent" [] (exec s "   ")

let test_other_structures () =
  List.iter
    (fun structure ->
      let s = Shell.create ~structure () in
      ignore (exec s "put 7 70");
      ignore (exec s "crash");
      check_lines (structure ^ " works") [ "70" ] (exec s "get 7"))
    [ "Hash"; "Splay"; "AVL"; "SG"; "Skip"; "BTree"; "Radix" ]

let test_modes () =
  List.iter
    (fun mode ->
      let s = Shell.create ~mode () in
      ignore (exec s "put 3 33");
      check_lines
        (Fmt.str "get in %a" Runtime.pp_mode mode)
        [ "33" ] (exec s "get 3"))
    [ Runtime.Sw; Runtime.Hw; Runtime.Explicit ]

let test_stats_shape () =
  let s = Shell.create () in
  ignore (exec s "put 1 1");
  let lines = exec s "stats" in
  check_bool "five stat lines" true (List.length lines = 5)

(* `crash torn` with a fixed seed must replay bit-identically: the
   examples/ transcript diff relies on this. *)
let test_torn_crash_deterministic () =
  let session () =
    let s = Shell.create ~seed:7 () in
    List.concat_map (exec s)
      [ "put 1 100"; "put 2 200"; "put 1 111"; "crash torn"; "size"; "crash";
        "keys" ]
  in
  let a = session () and b = session () in
  check_lines "identical replies" a b;
  check_bool "the torn crash replied" true
    (List.exists (contains ~needle:"torn store") a)

let () =
  Alcotest.run "shell"
    [
      ( "commands",
        [
          Alcotest.test_case "put/get/del" `Quick test_put_get_del;
          Alcotest.test_case "keys" `Quick test_keys_sorted;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "stats" `Quick test_stats_shape;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "crash cycles" `Quick test_crash_persistence;
          Alcotest.test_case "torn crash is deterministic" `Quick
            test_torn_crash_deterministic;
          Alcotest.test_case "all structures" `Quick test_other_structures;
          Alcotest.test_case "all modes" `Quick test_modes;
        ] );
    ]
