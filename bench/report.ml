(* Plain-text table rendering for the benchmark reports. *)

let line = String.make 78 '-'

let heading title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

let subheading title = Printf.printf "\n-- %s --\n" title

(* Render rows of cells with left-aligned first column and right-aligned
   numeric columns, sized to content. *)
let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let render_row row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        if c = 0 then Printf.printf "%-*s" w cell
        else Printf.printf "  %*s" w cell)
      row;
    print_newline ()
  in
  render_row header;
  List.iteri
    (fun c _ ->
      let w = List.nth widths c in
      if c = 0 then print_string (String.make w '-')
      else print_string ("  " ^ String.make w '-'))
    header;
  print_newline ();
  List.iter render_row rows

let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let pct x = Printf.sprintf "%.2f%%" (100. *. x)
let int_ n = string_of_int n

let with_commas n =
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Headline metrics, accumulated as experiments print and emitted as
   machine-readable JSON by the driver's [--json FILE] — the hook future
   PRs use to track the perf trajectory.  Experiments may record metrics
   from worker-domain tasks, so the list is mutex-guarded; ordering is
   whatever order [metric] is called in, which the driver keeps
   deterministic by recording from result values after the parallel
   joins. *)
let metrics : (string * float) list ref = ref []
let metrics_lock = Mutex.create ()

let metric name value =
  Mutex.lock metrics_lock;
  metrics := (name, value) :: !metrics;
  Mutex.unlock metrics_lock

let metrics_snapshot () =
  Mutex.lock metrics_lock;
  let l = List.rev !metrics in
  Mutex.unlock metrics_lock;
  l

let metrics_reset () =
  Mutex.lock metrics_lock;
  metrics := [];
  Mutex.unlock metrics_lock

(* Per-experiment operation tally for the --bench trajectory document
   (BENCH_<n>.json): experiments add the number of simulated operations
   they executed (structure ops, crash points, scrub records, ...); the
   driver takes — reads and resets — the tally around each experiment
   to derive ops/sec.  Guarded by the same lock because worker-domain
   result handlers may record it. *)
let ops_tally = ref 0

let ops_add n =
  Mutex.lock metrics_lock;
  ops_tally := !ops_tally + n;
  Mutex.unlock metrics_lock

let ops_take () =
  Mutex.lock metrics_lock;
  let n = !ops_tally in
  ops_tally := 0;
  Mutex.unlock metrics_lock;
  n

(* Per-experiment latency tally, the distribution-level companion of
   [ops_tally]: experiments feed the merged per-op recorders of the
   cells whose latency they report; the driver takes the merged
   recorder around each experiment and embeds its summary in the
   BENCH_<n>.json entry.  Merging is deterministic (recorder cells add;
   the slow-op reservoir has a total order), so the embedded summaries
   are identical across --jobs counts. *)
module Oplat = Nvml_runtime.Oplat

let lat_tally : Oplat.t option ref = ref None

let lat_add (o : Oplat.t) =
  Mutex.lock metrics_lock;
  (match !lat_tally with
  | Some t -> Oplat.merge_into ~dst:t o
  | None ->
      let t = Oplat.create ~cell:"experiment" () in
      Oplat.merge_into ~dst:t o;
      lat_tally := Some t);
  Mutex.unlock metrics_lock

let lat_take () =
  Mutex.lock metrics_lock;
  let t = !lat_tally in
  lat_tally := None;
  Mutex.unlock metrics_lock;
  t

(* --- telemetry profile sections ----------------------------------------- *)

(* The "check-site profile" section: per-site dynamic-check counts from
   a telemetry profile, as [(site, static, checks)] rows sorted by the
   caller; only the top [limit] rows are shown. *)
let check_site_profile ?(limit = 12) rows =
  subheading "check-site profile";
  let shown = List.filteri (fun i _ -> i < limit) rows in
  table
    ~header:[ "Site"; "static"; "dynamic checks" ]
    (List.map
       (fun (site, static, checks) ->
         [ site; (if static then "yes" else "no"); with_commas checks ])
       shown);
  let hidden = List.length rows - List.length shown in
  if hidden > 0 then Printf.printf "(%d more sites)\n" hidden

(* The "lookaside hit rates" section: named hit rates as percentages. *)
let lookaside_hit_rates rates =
  subheading "lookaside hit rates";
  table
    ~header:[ "Structure"; "hit rate" ]
    (List.map (fun (name, r) -> [ name; pct r ]) rates)

(* The "cycle attribution" section: rows of per-source cycle counts that
   sum to the version's total; rendered as fractions of that total. *)
let cycle_attribution ~sources rows =
  subheading "cycle attribution";
  table
    ~header:("Version" :: sources)
    (List.map
       (fun (label, counts) ->
         let total = float_of_int (max 1 (List.fold_left ( + ) 0 counts)) in
         label :: List.map (fun n -> pct (float_of_int n /. total)) counts)
       rows)

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
           /. float_of_int (List.length xs))
