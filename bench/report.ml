(* Plain-text table rendering for the benchmark reports. *)

let line = String.make 78 '-'

let heading title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

let subheading title = Printf.printf "\n-- %s --\n" title

(* Render rows of cells with left-aligned first column and right-aligned
   numeric columns, sized to content. *)
let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let render_row row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        if c = 0 then Printf.printf "%-*s" w cell
        else Printf.printf "  %*s" w cell)
      row;
    print_newline ()
  in
  render_row header;
  List.iteri
    (fun c _ ->
      let w = List.nth widths c in
      if c = 0 then print_string (String.make w '-')
      else print_string ("  " ^ String.make w '-'))
    header;
  print_newline ();
  List.iter render_row rows

let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let pct x = Printf.sprintf "%.2f%%" (100. *. x)
let int_ n = string_of_int n

let with_commas n =
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Headline metrics, accumulated as experiments print and emitted as
   machine-readable JSON by the driver's [--json FILE] — the hook future
   PRs use to track the perf trajectory. *)
let metrics : (string * float) list ref = ref []

let metric name value = metrics := (name, value) :: !metrics

let metrics_snapshot () = List.rev !metrics

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
           /. float_of_int (List.length xs))
