(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section (and the supporting analyses) against the
   simulated machine.

   Usage:
     dune exec bench/main.exe                 # everything, paper scale
     dune exec bench/main.exe -- --quick      # 10x smaller workloads
     dune exec bench/main.exe -- fig11 table5 # selected experiments
     dune exec bench/main.exe -- --jobs 4     # parallel simulation cells
     dune exec bench/main.exe -- --json out.json
     dune exec bench/main.exe -- --bench BENCH_6.json  # perf trajectory
     dune exec bench/main.exe -- --stats stats.json --trace trace.json
     dune exec bench/main.exe -- --metrics-json m.json  # metrics only
     dune exec bench/main.exe -- --list

   Independent simulation cells run on a domain worker pool sized by
   --jobs (or the NVML_JOBS environment variable; default: the
   machine's recommended domain count).  --jobs 1 reproduces the
   sequential output exactly. *)

module Workload = Nvml_ycsb.Workload
module Pool = Nvml_exec.Pool
module Telemetry = Nvml_telemetry.Telemetry
module Json = Nvml_telemetry.Json
module Profile = Nvml_kvstore.Profile

let all_experiments : (string * string * (Experiments.ctx -> unit)) list =
  [
    ("table2", "HW structure storage cost", Experiments.table2);
    ("table3", "benchmark inventory", Experiments.table3);
    ("table4", "simulator parameters", Experiments.table4);
    ("table5", "dynamic checks and conversions (SW)", Experiments.table5);
    ("fig11", "execution time normalized to volatile", Experiments.fig11);
    ("fig12", "translation-reuse codelet", Experiments.fig12);
    ("fig9", "compiler-generated code sample", Experiments.fig9);
    ("fig13", "branch mispredictions normalized", Experiments.fig13);
    ("fig14", "VALB/VAW latency sensitivity", Experiments.fig14);
    ("fig15", "translation-hardware access fractions", Experiments.fig15);
    ("profile", "telemetry: check sites, lookasides, cycles", Experiments.profile);
    ("table6", "relocation overhead comparison", Experiments.table6);
    ("knn", "KNN case study + productivity", Experiments.knn);
    ("soundness", "mini-C corpus soundness runs", Experiments.soundness);
    ("compiler", "pointer-property inference stats", Experiments.compiler);
    ("productivity", "library migration cost table", Experiments.productivity);
    ("ablation", "design-choice ablations", Experiments.ablation);
    ("extended", "extended structure set", Experiments.extended);
    ("multipool", "pool-count capacity sweep", Experiments.multipool);
    ("txn", "transaction overhead", Experiments.txn_overhead);
    ("faultinject", "crash-point recovery sweep", Experiments.faultinject);
    ("scrub", "media-error detection/repair coverage", Experiments.scrub);
    ("serving", "sharded serving engine throughput/latency", Experiments.serving);
    ("concurrent", "multi-core contention, FliT elision, durability", Experiments.concurrent);
    ("persist", "persistency-model sweep: drain savings vs loss exposure", Experiments.persist);
    ("sweep", "NVM latency and working-set sweeps", Experiments.sweep);
    ("micro", "bechamel micro-benchmarks", Experiments.micro);
  ]

(* Execution-mode classification for the --bench trajectory document:
   which core each experiment drives.  "fast" experiments run the
   verification engines, which default to fast functional simulation
   since PR 6; "cycle" experiments measure timing and always run the
   cycle-accurate core; "other" experiments do no simulation worth
   classifying (static tables, compiler output, micro-benchmarks). *)
let mode_of_experiment = function
  | "faultinject" | "scrub" | "serving" -> "fast"
  | "table5" | "fig11" | "fig12" | "fig13" | "fig14" | "fig15" | "profile"
  | "table6" | "knn" | "soundness" | "ablation" | "extended" | "multipool"
  | "txn" | "sweep" | "concurrent" | "persist" ->
      "cycle"
  | _ -> "other"

(* Minimal JSON emission — just what the report needs, no dependency. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

let write_json oc ~spec ~quick ~jobs ~timings ~total =
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": 1,\n";
  p "  \"workload\": \"%s\",\n" (json_escape (Fmt.str "%a" Workload.pp_spec spec));
  p "  \"quick\": %b,\n" quick;
  p "  \"jobs\": %d,\n" jobs;
  p "  \"total_wall_s\": %.3f,\n" total;
  p "  \"experiments\": [\n";
  List.iteri
    (fun i (name, wall, _, _) ->
      p "    {\"name\": \"%s\", \"wall_s\": %.3f}%s\n" (json_escape name) wall
        (if i = List.length timings - 1 then "" else ","))
    timings;
  p "  ],\n";
  let metrics = Report.metrics_snapshot () in
  p "  \"metrics\": {\n";
  List.iteri
    (fun i (name, v) ->
      p "    \"%s\": %s%s\n" (json_escape name) (json_float v)
        (if i = List.length metrics - 1 then "" else ","))
    metrics;
  p "  }\n";
  p "}\n";
  close_out oc

(* The perf-trajectory document (BENCH_<n>.json): suite wall-clock, a
   wall-clock breakdown by execution mode, and per-experiment wall,
   operation count and ops/sec.  Schema checked by
   [check_stats --bench]. *)
let write_bench_json oc ~quick ~jobs ~timings ~total =
  let p fmt = Printf.fprintf oc fmt in
  let wall_of m =
    List.fold_left
      (fun acc (name, wall, _, _) ->
        if mode_of_experiment name = m then acc +. wall else acc)
      0.0 timings
  in
  p "{\n";
  p "  \"schema\": 1,\n";
  p "  \"kind\": \"bench-trajectory\",\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"jobs\": %d,\n" jobs;
  p "  \"suite_wall_s\": %.3f,\n" total;
  p "  \"mode_breakdown\": {\"fast_wall_s\": %.3f, \"cycle_wall_s\": %.3f, \
     \"other_wall_s\": %.3f},\n"
    (wall_of "fast") (wall_of "cycle") (wall_of "other");
  p "  \"experiments\": [\n";
  List.iteri
    (fun i (name, wall, ops, lat) ->
      let ops_per_s = if wall > 0.0 then float_of_int ops /. wall else 0.0 in
      let latency =
        match lat with
        | None -> ""
        | Some o ->
            Printf.sprintf ", \"latency\": %s"
              (Json.to_string (Nvml_runtime.Oplat.summary_json o))
      in
      p
        "    {\"name\": \"%s\", \"mode\": \"%s\", \"wall_s\": %.3f, \
         \"ops\": %d, \"ops_per_s\": %s%s}%s\n"
        (json_escape name)
        (mode_of_experiment name)
        wall ops (json_float ops_per_s) latency
        (if i = List.length timings - 1 then "" else ","))
    timings;
  p "  ],\n";
  (* The deterministic metrics ride along so trajectory baselines can
     floor more than wall-clocks (e.g. the persist experiment's
     epoch-mode cycle-savings fractions). *)
  let metrics = Report.metrics_snapshot () in
  p "  \"metrics\": {\n";
  List.iteri
    (fun i (name, v) ->
      p "    \"%s\": %s%s\n" (json_escape name) (json_float v)
        (if i = List.length metrics - 1 then "" else ","))
    metrics;
  p "  }\n";
  p "}\n";
  close_out oc

(* The metrics alone, without wall timings — byte-identical across
   [--jobs N] by construction, which the determinism test relies on. *)
let write_metrics_json oc =
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": 1,\n";
  let metrics = Report.metrics_snapshot () in
  p "  \"metrics\": {\n";
  List.iteri
    (fun i (name, v) ->
      p "    \"%s\": %s%s\n" (json_escape name) (json_float v)
        (if i = List.length metrics - 1 then "" else ","))
    metrics;
  p "  }\n";
  p "}\n";
  close_out oc

(* Pull the value of [--flag V] out of the raw argument list. *)
let extract_value_arg flag args =
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | a :: v :: rest when a = flag -> (Some v, List.rev_append acc rest)
    | a :: rest -> go (a :: acc) rest
  in
  go [] args

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  if List.mem "--list" args then begin
    List.iter
      (fun (name, doc, _) -> Printf.printf "%-14s %s\n" name doc)
      all_experiments;
    exit 0
  end;
  let jobs_arg, args = extract_value_arg "--jobs" args in
  let json_path, args = extract_value_arg "--json" args in
  let bench_path, args = extract_value_arg "--bench" args in
  let stats_path, args = extract_value_arg "--stats" args in
  let trace_path, args = extract_value_arg "--trace" args in
  let metrics_path, args = extract_value_arg "--metrics-json" args in
  let jobs =
    match jobs_arg with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> n
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" s;
            exit 1)
    | None -> (
        try Pool.default_jobs ()
        with Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          exit 1)
  in
  (* Open the output sinks before the (long) run so a bad path fails fast. *)
  let open_sink flag = function
    | None -> None
    | Some path -> (
        try Some (open_out path)
        with Sys_error msg ->
          Printf.eprintf "%s: %s\n" flag msg;
          exit 1)
  in
  let json_out = open_sink "--json" json_path in
  let bench_out = open_sink "--bench" bench_path in
  let stats_out = open_sink "--stats" stats_path in
  let trace_out = open_sink "--trace" trace_path in
  let metrics_out = open_sink "--metrics-json" metrics_path in
  (* [--trace] records the whole run: enable telemetry up front so the
     worker-pool sinks exist and merge into this domain's at each join. *)
  if trace_out <> None then Telemetry.set_enabled true;
  let quick = List.mem "--quick" args in
  let verbose = not (List.mem "--quiet" args) in
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let spec =
    if quick then Workload.scale Workload.paper_default 10
    else Workload.paper_default
  in
  let pool = Pool.create ~jobs () in
  let ctx = { Experiments.spec; verbose; pool } in
  let chosen =
    match selected with
    | [] -> all_experiments
    | names ->
        List.map
          (fun n ->
            match
              List.find_opt (fun (name, _, _) -> name = n) all_experiments
            with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S (try --list)\n" n;
                exit 1)
          names
  in
  Printf.printf
    "nvml benchmark harness — workload: %s%s\n"
    (Fmt.str "%a" Workload.pp_spec spec)
    (if quick then " [quick]" else "");
  let t0 = Unix.gettimeofday () in
  let timings =
    List.map
      (fun (name, _, f) ->
        let te = Unix.gettimeofday () in
        ignore (Report.ops_take () : int);
        ignore (Report.lat_take ());
        f ctx;
        let wall = Unix.gettimeofday () -. te in
        (name, wall, Report.ops_take (), Report.lat_take ()))
      chosen
  in
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "\nTotal wall time: %.1fs\n" total;
  (match json_out with
  | Some oc -> write_json oc ~spec ~quick ~jobs ~timings ~total
  | None -> ());
  (match bench_out with
  | Some oc -> write_bench_json oc ~quick ~jobs ~timings ~total
  | None -> ());
  (match metrics_out with
  | Some oc -> write_metrics_json oc
  | None -> ());
  (match stats_out with
  | Some oc ->
      (* The stats document from the profile run — produced on demand
         when the [profile] experiment was not part of the selection. *)
      let p =
        match !Experiments.last_profile with
        | Some p -> p
        | None -> Profile.run ~par:(Pool.run pool) ~benchmark:"RB" spec
      in
      Json.to_channel oc (Profile.stats_json p);
      output_char oc '\n';
      close_out oc
  | None -> ());
  (match trace_out with
  | Some oc ->
      Telemetry.write_chrome_trace oc;
      close_out oc
  | None -> ());
  Pool.shutdown pool
