(* The experiment implementations: one entry per table and figure of
   the paper's evaluation section (see DESIGN.md's per-experiment
   index).  Heavy simulator runs are shared: the 6-benchmark x 4-mode
   result matrix is computed once and reused by Table V and Figures 11,
   13 and 15. *)

module Config = Nvml_arch.Config
module Cpu = Nvml_arch.Cpu
module Hw_cost = Nvml_arch.Hw_cost
module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate
module Checks = Nvml_core.Checks
module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Registry = Nvml_structures.Registry
module Workload = Nvml_ycsb.Workload
module Harness = Nvml_kvstore.Harness
module Matrix = Nvml_mlkit.Matrix
module Iris = Nvml_mlkit.Iris
module Knn = Nvml_mlkit.Knn
module Interp = Nvml_minic.Interp
module Corpus = Nvml_minic.Corpus
module Inference = Nvml_comp.Inference
open Report

type ctx = { spec : Workload.spec; verbose : bool; pool : Nvml_exec.Pool.t }

let benchmarks = Registry.benchmark_names (* LL Hash RB Splay AVL SG *)

(* --- shared benchmark matrix -------------------------------------------- *)

let matrix_cache : (string * Runtime.mode, Harness.result) Hashtbl.t =
  Hashtbl.create 32

let run_one ctx ?cfg name mode =
  if ctx.verbose then
    Printf.eprintf "  [run] %s / %s...\n%!" name (Runtime.mode_name mode);
  Harness.run_benchmark name ~mode ?cfg ctx.spec

let matrix ctx name mode =
  match Hashtbl.find_opt matrix_cache (name, mode) with
  | Some r -> r
  | None ->
      let r = run_one ctx name mode in
      Hashtbl.replace matrix_cache (name, mode) r;
      r

(* --- parallel cell execution -------------------------------------------- *)

(* Run independent simulation cells through the worker pool, results in
   submission order.  With one job this executes inline in submission
   order, which is exactly the order the sequential code used — so
   [--jobs 1] reproduces the pre-parallel output byte for byte. *)
let par_map ctx f xs = Nvml_exec.Pool.map ctx.pool f xs

(* Populate [matrix_cache] for the given cells in parallel.  A no-op
   with one job: the lazy [matrix] fills the cache in the sequential
   order instead, preserving the exact sequential behaviour.  Cells are
   share-nothing (each builds its own [Runtime.t] and seeds its RNG
   from the spec), so the cached results are independent of worker
   count and scheduling. *)
let prefetch ctx cells =
  if Nvml_exec.Pool.jobs ctx.pool > 1 then begin
    let seen = Hashtbl.create 16 in
    let todo =
      List.filter
        (fun cell ->
          if Hashtbl.mem matrix_cache cell || Hashtbl.mem seen cell then false
          else begin
            Hashtbl.add seen cell ();
            true
          end)
        cells
    in
    let results = par_map ctx (fun (name, mode) -> run_one ctx name mode) todo in
    List.iter2 (fun cell r -> Hashtbl.replace matrix_cache cell r) todo results
  end

(* Every (benchmark x mode) cell an experiment over [names] consumes,
   volatile included (the normalization denominator). *)
let matrix_cells names modes =
  List.concat_map
    (fun name -> List.map (fun mode -> (name, mode)) modes)
    names

let norm_cycles ctx name mode =
  let r = matrix ctx name mode in
  let v = matrix ctx name Runtime.Volatile in
  float_of_int r.Harness.run.Cpu.cycles /. float_of_int v.Harness.run.Cpu.cycles

(* --- ops and latency accounting ------------------------------------------ *)

(* Consumption crediting for the --bench ops tally: each experiment
   credits the op stream of every simulation cell it consumes — cached
   matrix cells included, so a cell shared by several experiments
   counts toward each of them (every BENCH row stands on its own).
   Producer-side crediting in [run_one] left every cache-consuming and
   self-simulating experiment at ops 0. *)
let credit_cells ctx n = Report.ops_add (n * ctx.spec.Workload.operation_count)

module Latency = Nvml_telemetry.Latency
module Oplat = Nvml_runtime.Oplat

(* Merge the per-op recorders in [oplats], emit the aggregate as
   <prefix>.latency.{p50,p90,p99,p999,max} plus the per-component
   attribution of the retained tail (fractions of the tail's cycles),
   and feed the aggregate into the per-experiment latency tally of the
   --bench document.  Everything derives from result values after the
   parallel joins, so the metrics are byte-identical across --jobs. *)
let latency_metrics prefix oplats =
  let agg = Oplat.create ~cell:prefix () in
  List.iter (fun o -> Oplat.merge_into ~dst:agg o) oplats;
  if Oplat.count agg > 0 then begin
    let s = Latency.summary (Oplat.latency agg) in
    metric (prefix ^ ".latency.p50") (float_of_int s.Latency.p50);
    metric (prefix ^ ".latency.p90") (float_of_int s.Latency.p90);
    metric (prefix ^ ".latency.p99") (float_of_int s.Latency.p99);
    metric (prefix ^ ".latency.p999") (float_of_int s.Latency.p999);
    metric (prefix ^ ".latency.max") (float_of_int s.Latency.max);
    let tail = Oplat.tail_components agg in
    let tot = float_of_int (max 1 (Oplat.components_total tail)) in
    let frac n = float_of_int n /. tot in
    metric (prefix ^ ".latency.tail.base") (frac tail.Oplat.base);
    metric (prefix ^ ".latency.tail.check") (frac tail.Oplat.check);
    metric (prefix ^ ".latency.tail.translation") (frac tail.Oplat.translation);
    metric (prefix ^ ".latency.tail.stall") (frac tail.Oplat.stall);
    metric (prefix ^ ".latency.tail.media") (frac tail.Oplat.media);
    Report.lat_add agg
  end

let result_oplats rs = List.map (fun (r : Harness.result) -> r.Harness.oplat) rs

(* The per-benchmark latency table rendered by experiments that show
   their tail distributions inline. *)
let latency_table rows =
  subheading "per-op latency (cycles)";
  table
    ~header:[ "Benchmark"; "ops"; "p50"; "p90"; "p99"; "p999"; "max" ]
    (List.map
       (fun (label, (o : Oplat.t)) ->
         let s = Latency.summary (Oplat.latency o) in
         [
           label; with_commas s.Latency.count; with_commas s.Latency.p50;
           with_commas s.Latency.p90; with_commas s.Latency.p99;
           with_commas s.Latency.p999; with_commas s.Latency.max;
         ])
       rows)

(* --- Table II ------------------------------------------------------------ *)

let table2 _ctx =
  heading "Table II: storage cost of the hardware structures (45 nm)";
  let structures = Hw_cost.of_config Config.default in
  table
    ~header:[ "Structure"; "Entry (B)"; "Entries"; "Total (B)"; "Area (mm^2)" ]
    (List.map
       (fun s ->
         [
           s.Hw_cost.name;
           int_ s.Hw_cost.entry_bytes;
           int_ s.Hw_cost.num_entries;
           int_ (Hw_cost.total_bytes s);
           Printf.sprintf "%.4f" (Hw_cost.area_mm2 s);
         ])
       structures);
  Printf.printf
    "Total size: %s bytes; total area: %.4f mm^2 (%.3f%% of an 81 mm^2 die)\n"
    (with_commas (Hw_cost.total_bytes_all structures))
    (Hw_cost.total_area_all structures)
    (100. *. Hw_cost.fraction_of_die structures);
  Printf.printf "Paper: 1,280 bytes total, 0.0479 mm^2, 0.059%% of die.\n"

(* --- Table III ------------------------------------------------------------ *)

let table3 _ctx =
  heading "Table III: benchmark data structures";
  let module S = Nvml_structures in
  let node_bytes = function
    | "LL" -> S.Linked_list.node_size
    | "Hash" -> S.Hash_table.node_size
    | "RB" -> S.Rb_tree.node_size
    | "Splay" -> S.Splay_tree.node_size
    | "AVL" -> S.Avl_tree.node_size
    | "SG" -> S.Scapegoat_tree.node_size
    | _ -> 0
  in
  let describe = function
    | "LL" -> S.Linked_list.description
    | "Hash" -> S.Hash_table.description
    | "RB" -> S.Rb_tree.description
    | "Splay" -> S.Splay_tree.description
    | "AVL" -> S.Avl_tree.description
    | "SG" -> S.Scapegoat_tree.description
    | _ -> ""
  in
  table
    ~header:[ "Benchmark"; "Node (B)"; "Implementation" ]
    (List.map
       (fun n -> [ n; int_ (node_bytes n); describe n ])
       benchmarks);
  Printf.printf
    "(The paper instantiates these from Boost, 22,206 lines of library code;\n\
    \ here each is implemented from scratch over the simulated-memory runtime.)\n"

(* --- Table IV -------------------------------------------------------------- *)

let table4 _ctx =
  heading "Table IV: simulator parameters";
  table ~header:[ "Component"; "Parameter" ]
    (List.map (fun (k, v) -> [ k; v ]) (Config.rows Config.default))

(* --- Table V ---------------------------------------------------------------- *)

let table5 ctx =
  heading "Table V: dynamic checks and conversions (SW version)";
  prefetch ctx (matrix_cells benchmarks [ Runtime.Sw ]);
  List.iter
    (fun name ->
      let r = matrix ctx name Runtime.Sw in
      metric
        (Printf.sprintf "table5.dynamic_checks.%s" name)
        (float_of_int r.Harness.checks.Harness.dynamic_checks))
    benchmarks;
  table
    ~header:[ "Benchmark"; "dynamic checks"; "abs. to rel."; "rel. to abs." ]
    (List.map
       (fun name ->
         let r = matrix ctx name Runtime.Sw in
         [
           name;
           with_commas r.Harness.checks.Harness.dynamic_checks;
           with_commas r.Harness.checks.Harness.abs_to_rel;
           with_commas r.Harness.checks.Harness.rel_to_abs;
         ])
       benchmarks);
  credit_cells ctx (List.length benchmarks);
  latency_table
    (List.map (fun n -> (n, (matrix ctx n Runtime.Sw).Harness.oplat)) benchmarks);
  latency_metrics "table5.sw"
    (result_oplats (List.map (fun n -> matrix ctx n Runtime.Sw) benchmarks));
  Printf.printf
    "Paper magnitudes (100k ops): LL 8.2M, Hash 2.6M, RB 14.5M, Splay 25.6M,\n\
     AVL 14.4M, SG 18.1M dynamic checks.\n"

(* --- Figure 11 --------------------------------------------------------------- *)

let fig11 ctx =
  heading
    "Figure 11: execution time normalized to the volatile version (lower is \
     better)";
  prefetch ctx
    (matrix_cells benchmarks
       [ Runtime.Explicit; Runtime.Volatile; Runtime.Sw; Runtime.Hw ]);
  let rows =
    List.map
      (fun name ->
        [
          name;
          f3 (norm_cycles ctx name Runtime.Explicit);
          f3 (norm_cycles ctx name Runtime.Sw);
          f3 (norm_cycles ctx name Runtime.Hw);
        ])
      benchmarks
  in
  table ~header:[ "Benchmark"; "Explicit"; "SW"; "HW" ] rows;
  let gm mode = geomean (List.map (fun n -> norm_cycles ctx n mode) benchmarks) in
  metric "fig11.geomean.explicit" (gm Runtime.Explicit);
  metric "fig11.geomean.sw" (gm Runtime.Sw);
  metric "fig11.geomean.hw" (gm Runtime.Hw);
  credit_cells ctx (4 * List.length benchmarks);
  latency_metrics "fig11.hw"
    (result_oplats (List.map (fun n -> matrix ctx n Runtime.Hw) benchmarks));
  Printf.printf
    "Geomean: Explicit %.3f, SW %.3f, HW %.3f; HW speedup over Explicit %.2fx\n"
    (gm Runtime.Explicit) (gm Runtime.Sw) (gm Runtime.Hw)
    (gm Runtime.Explicit /. gm Runtime.Hw);
  Printf.printf
    "Paper shape: SW ~2.75x average; HW <= 1.12x; HW beats Explicit by ~1.33x.\n"

(* --- Figure 12 ---------------------------------------------------------------- *)

let fig12 _ctx =
  heading
    "Figure 12: translation reuse — one loaded pointer, many field accesses";
  let site = Site.make "fig12.harness" in
  let run mode =
    let rt = Runtime.create ~mode () in
    let pool = Runtime.create_pool rt ~name:"p" ~size:(1 lsl 20) in
    let a = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
    let b = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
    Runtime.store_ptr rt ~site a ~off:0 b;
    let s0 = Runtime.snapshot rt in
    (* codelet: q = a->ptr; then 6 field reads through q *)
    let q = Runtime.load_ptr rt ~site a ~off:0 in
    for i = 0 to 5 do
      ignore (Runtime.load_word rt ~site q ~off:(8 * i))
    done;
    let s1 = Runtime.snapshot rt in
    (Cpu.diff_snapshot s1 s0).Cpu.polb_accesses
  in
  table
    ~header:[ "Version"; "address translations for 1 pointer + 6 reads" ]
    [
      [ "HW (user-transparent)"; int_ (run Runtime.Hw) ];
      [ "Explicit"; int_ (run Runtime.Explicit) ];
    ];
  Report.ops_add 14 (* 2 versions x (1 pointer load + 6 field reads) *);
  Printf.printf
    "The HW version converts once when the pointer is materialized and reuses\n\
     the virtual address; the explicit version translates at every access.\n"

(* --- Figure 13 ----------------------------------------------------------------- *)

let fig13 ctx =
  heading
    "Figure 13: branch mispredictions normalized to the volatile version";
  prefetch ctx
    (matrix_cells benchmarks
       [ Runtime.Sw; Runtime.Volatile; Runtime.Hw; Runtime.Explicit ]);
  let mp name mode =
    let r = matrix ctx name mode in
    let v = matrix ctx name Runtime.Volatile in
    float_of_int r.Harness.run.Cpu.branch_mispredicts
    /. float_of_int (max 1 v.Harness.run.Cpu.branch_mispredicts)
  in
  table
    ~header:[ "Benchmark"; "SW"; "HW"; "Explicit" ]
    (List.map
       (fun name ->
         [
           name;
           f2 (mp name Runtime.Sw);
           f2 (mp name Runtime.Hw);
           f2 (mp name Runtime.Explicit);
         ])
       benchmarks);
  credit_cells ctx (4 * List.length benchmarks);
  Printf.printf
    "Paper shape: SW mispredicts 6.7x - 2944x more than HW; HW ~= volatile.\n"

(* --- Figure 14 ------------------------------------------------------------------ *)

let fig14 ctx =
  heading
    "Figure 14: HW execution time vs VALB/VAW latency, normalized to Explicit";
  prefetch ctx (matrix_cells benchmarks [ Runtime.Explicit ]);
  let latencies = [ 3; 10; 25; 50 ] in
  let header = "Benchmark" :: List.map (fun l -> Printf.sprintf "%dcyc" l) latencies in
  let grid =
    List.concat_map
      (fun name -> List.map (fun lat -> (name, lat)) latencies)
      benchmarks
  in
  let results =
    par_map ctx
      (fun (name, lat) ->
        let cfg =
          { Config.default with Config.valb_latency = lat;
            vatb_node_latency = lat }
        in
        run_one ctx ~cfg name Runtime.Hw)
      grid
  in
  let by_cell = List.combine grid results in
  let rows =
    List.map
      (fun name ->
        let explicit =
          float_of_int (matrix ctx name Runtime.Explicit).Harness.run.Cpu.cycles
        in
        name
        :: List.map
             (fun lat ->
               let r = List.assoc (name, lat) by_cell in
               f3 (float_of_int r.Harness.run.Cpu.cycles /. explicit))
             latencies)
      benchmarks
  in
  table ~header rows;
  credit_cells ctx (List.length grid + List.length benchmarks);
  latency_metrics "fig14.hw" (result_oplats results);
  Printf.printf
    "Paper shape: even 50-cycle VALB/VAW latency costs < 10%% — storeP is rare\n\
     and its translations are hidden in the storeP unit.\n"

(* --- Figure 15 ------------------------------------------------------------------- *)

let fig15 ctx =
  heading
    "Figure 15: fraction of memory accesses using the translation hardware (HW)";
  prefetch ctx (matrix_cells benchmarks [ Runtime.Hw ]);
  table
    ~header:[ "Benchmark"; "storeP"; "VALB/VAW"; "POLB/POW" ]
    (List.map
       (fun name ->
         let s = (matrix ctx name Runtime.Hw).Harness.run in
         let m = float_of_int (max 1 s.Cpu.mem_accesses) in
         [
           name;
           pct (float_of_int s.Cpu.storeps /. m);
           pct (float_of_int s.Cpu.valb_accesses /. m);
           pct (float_of_int s.Cpu.polb_accesses /. m);
         ])
       benchmarks);
  credit_cells ctx (List.length benchmarks);
  Printf.printf
    "Paper: 0.38%% of accesses are storeP, 0.22%% touch the VALB/VAW, 12.6%%\n\
     touch the POLB/POW.\n"

(* --- KNN case study ------------------------------------------------------------- *)

let knn_run mode =
  let rt = Runtime.create ~mode () in
  let pool =
    match mode with
    | Runtime.Volatile -> -1
    | _ -> Runtime.create_pool rt ~name:"knn" ~size:(1 lsl 21)
  in
  let placement =
    match mode with
    | Runtime.Volatile -> Knn.all_dram
    | _ -> Knn.paper_placement ~pool
  in
  let data = Iris.generate () in
  let t =
    Knn.create rt placement ~n:Iris.total_samples ~dims:Iris.features_per_sample
      ~k:3
  in
  Knn.load_input t data.Iris.features;
  let s0 = Runtime.snapshot rt in
  Knn.run rt t;
  let s1 = Runtime.snapshot rt in
  (Knn.accuracy t data.Iris.labels, Cpu.diff_snapshot s1 s0)

let knn _ctx =
  heading "Case study (Sec. VII-E): KNN over iris, all matrices persisted but input";
  let acc_v, vol = knn_run Runtime.Volatile in
  let rows =
    List.map
      (fun mode ->
        let acc, s = knn_run mode in
        let m = float_of_int (max 1 s.Cpu.mem_accesses) in
        [
          Runtime.mode_name mode;
          f3 (float_of_int s.Cpu.cycles /. float_of_int vol.Cpu.cycles);
          pct (float_of_int s.Cpu.polb_accesses /. m);
          Printf.sprintf "%.1f%%" (100. *. acc);
        ])
      [ Runtime.Volatile; Runtime.Hw; Runtime.Sw; Runtime.Explicit ]
  in
  ignore acc_v;
  (* 5 KNN kernel runs (volatile reference + 4 modes), one classified
     sample per op *)
  Report.ops_add (5 * Iris.total_samples);
  table ~header:[ "Version"; "Norm. time"; "translating accesses"; "accuracy" ] rows;
  Printf.printf "Paper: HW marginal overhead (0.22%% of loads translate);\n";
  Printf.printf "       SW sees 7.56x slowdown on this kernel.\n";
  subheading "Productivity (lines/sites to change for NVM)";
  let count_sites prefix =
    List.length (List.filter (fun s -> not (Site.is_static s)) (Site.with_prefix prefix))
  in
  let matrix_sites = count_sites "matrix." in
  let knn_sites = count_sites "knn." in
  table
    ~header:[ "Approach"; "This repro"; "Paper (KNN/MLPack)" ]
    [
      [ "user-transparent: alloc lines changed"; "4 (matrix placements)"; "7 lines" ];
      [
        "explicit: pointer-op sites to rewrite";
        Printf.sprintf "%d sites (matrix %d + knn %d) per placement combo"
          (matrix_sites + knn_sites) matrix_sites knn_sites;
        "863 lines, >10 objects, 32 functions";
      ];
      [ "explicit: DRAM/NVM placement combos"; "16 (4 matrices)"; "16 versions" ];
    ]

(* --- Fig. 9: generated code -------------------------------------------------------- *)

let fig9_source =
  {|
struct Node { int value; struct Node* next; };
void Append(struct Node* p, struct Node* n) {
  if (p != n) {
    p->next = n;
  }
  return;
}
int main() {
  struct Node* a = (struct Node*) malloc(sizeof(struct Node));
  struct Node* b = (struct Node*) malloc(sizeof(struct Node));
  a->next = NULL;
  Append(a, b);
  return 0;
}
|}

let fig9 _ctx =
  heading "Figure 9: compiler-generated code for the linked-list Append";
  let program = Nvml_minic.Parser.parse_program fig9_source in
  subheading "input source";
  print_endline (String.trim fig9_source);
  subheading "after inference + check insertion (SW version)";
  print_endline (Nvml_comp.Codegen.generated_source program);
  let r = Inference.infer program in
  Printf.printf
    "\n%d of %d pointer-op sites kept their dynamic checks (the operands\n\
     reaching Append are opaque parameters, exactly as in the paper).\n"
    r.Inference.checked_sites r.Inference.total_sites

(* --- soundness (Sec. VII-B) ------------------------------------------------------ *)

let run_minic ?plan ~mode ~persistent program =
  let rt = Runtime.create ~mode () in
  let heap =
    if persistent && mode <> Runtime.Volatile then
      Runtime.Pool_region (Runtime.create_pool rt ~name:"heap" ~size:(1 lsl 22))
    else Runtime.Dram_region
  in
  (Interp.run rt ?plan ~heap program ~args:[]).Interp.output

let soundness _ctx =
  heading "Soundness (Sec. VII-B): corpus under native vs pmalloc-everything heaps";
  let total = ref 0 and passed = ref 0 in
  let rows =
    List.map
      (fun (name, program) ->
        let reference = run_minic ~mode:Runtime.Volatile ~persistent:false program in
        let check mode persistent =
          incr total;
          let ok = run_minic ~mode ~persistent program = reference in
          if ok then incr passed;
          if ok then "ok" else "FAIL"
        in
        let plan_check () =
          incr total;
          let inference = Inference.infer program in
          let plan = Inference.plan inference in
          let ok =
            run_minic ~plan ~mode:Runtime.Sw ~persistent:true program = reference
          in
          if ok then incr passed;
          if ok then "ok" else "FAIL"
        in
        [
          name;
          check Runtime.Sw false;
          check Runtime.Sw true;
          check Runtime.Hw false;
          check Runtime.Hw true;
          plan_check ();
        ])
      Corpus.all
  in
  table
    ~header:
      [ "Program"; "SW/DRAM"; "SW/NVM"; "HW/DRAM"; "HW/NVM"; "SW+inference" ]
    rows;
  (* one op per corpus execution: the checks plus one reference run
     per program *)
  Report.ops_add (!total + List.length Corpus.all);
  Printf.printf "%d/%d runs match the native output.\n" !passed !total;
  Printf.printf
    "(Paper: all 267 application + 1518 regression tests of the LLVM\n\
    \ test-suite pass under the SW implementation.)\n"

(* --- compiler inference (Sec. V-B) ------------------------------------------------ *)

let compiler _ctx =
  heading "Compiler pass: pointer-property inference, checks remaining per program";
  let stats =
    List.map
      (fun (name, program) ->
        let r = Inference.infer program in
        (name, r.Inference.total_sites, r.Inference.checked_sites,
         Inference.fraction_checked r))
      Corpus.all
  in
  table
    ~header:[ "Program"; "pointer-op sites"; "checked"; "% remaining" ]
    (List.map
       (fun (name, total, checked, frac) ->
         [ name; int_ total; int_ checked; pct frac ])
       stats);
  let avg =
    List.fold_left (fun acc (_, _, _, f) -> acc +. f) 0.0 stats
    /. float_of_int (List.length stats)
  in
  let total = List.fold_left (fun acc (_, t, _, _) -> acc + t) 0 stats in
  let checked = List.fold_left (fun acc (_, _, c, _) -> acc + c) 0 stats in
  Printf.printf
    "Average checks remaining: %.1f%% per program, %.1f%% site-weighted\n\
     (paper: ~42%% on Boost; traversal-shaped programs here land at 32-83%%).\n"
    (100. *. avg)
    (100. *. float_of_int checked /. float_of_int total)

(* --- productivity table ------------------------------------------------------------ *)

let productivity _ctx =
  heading "Productivity: migration cost, transparent vs explicit";
  let prefixes =
    [ ("LL", "ll."); ("Hash", "hash."); ("RB", "rb."); ("Splay", "splay.");
      ("AVL", "avl."); ("SG", "sg."); ("Matrix+KNN", "matrix.") ]
  in
  table
    ~header:
      [ "Library"; "explicit: pointer-op sites to rewrite";
        "transparent: lines changed" ]
    (List.map
       (fun (name, prefix) ->
         let sites = List.length (Site.with_prefix prefix) in
         [ name; int_ sites; "1 (allocator call)" ])
       prefixes);
  Printf.printf
    "Reference points from the paper: porting Redis to PMDK changed 4,348\n\
     lines (7.6%% of the codebase); migrating rocksDB's index added 4,117\n\
     lines; the explicit KNN port changes 863 lines.\n"

(* --- ablations ----------------------------------------------------------------------- *)

(* Quantify the design choices DESIGN.md calls out: (1) the
   translation-reuse register model behind the HW-vs-Explicit win and
   the Fig. 14 flatness; (2) predictor capacity, which governs how much
   of the SW slowdown is misprediction. *)
let ablation ctx =
  heading "Ablation 1: the keep-relative/translation-reuse optimization (HW)";
  let bench_set = [ "RB"; "Splay"; "Hash" ] in
  prefetch ctx
    (matrix_cells bench_set [ Runtime.Volatile; Runtime.Hw ]
    @ [ ("Splay", Runtime.Explicit); ("RB", Runtime.Volatile) ]);
  let cfg_off = { Config.default with Config.keep_relative_opt = false } in
  let offs =
    List.combine bench_set
      (par_map ctx (fun name -> run_one ctx ~cfg:cfg_off name Runtime.Hw)
         bench_set)
  in
  let rows =
    List.map
      (fun name ->
        let volatile =
          float_of_int (matrix ctx name Runtime.Volatile).Harness.run.Cpu.cycles
        in
        let on = matrix ctx name Runtime.Hw in
        let off = List.assoc name offs in
        let valb_frac (r : Harness.result) =
          float_of_int r.Harness.run.Cpu.valb_accesses
          /. float_of_int (max 1 r.Harness.run.Cpu.mem_accesses)
        in
        [
          name;
          f3 (float_of_int on.Harness.run.Cpu.cycles /. volatile);
          f3 (float_of_int off.Harness.run.Cpu.cycles /. volatile);
          pct (valb_frac on);
          pct (valb_frac off);
          int_ off.Harness.run.Cpu.storep_stall_cycles;
        ])
      bench_set
  in
  table
    ~header:
      [ "Benchmark"; "HW (reuse on)"; "HW (reuse off)"; "VALB on"; "VALB off";
        "FSM stalls (off)" ]
    rows;
  Printf.printf
    "Reuse eliminates nearly all va2ra traffic; without it the VALB absorbs\n\
     every store-back, but the 32-entry storeP FSM hides the latency — the\n\
     translations cost bandwidth, not time (hence Fig. 14's flatness).\n";
  subheading "VALB/VAW latency sensitivity with reuse disabled (Splay)";
  let explicit =
    float_of_int (matrix ctx "Splay" Runtime.Explicit).Harness.run.Cpu.cycles
  in
  let row =
    "Splay(no reuse)"
    :: par_map ctx
         (fun lat ->
           let cfg =
             { Config.default with Config.keep_relative_opt = false;
               valb_latency = lat; vatb_node_latency = lat }
           in
           let r = run_one ctx ~cfg "Splay" Runtime.Hw in
           f3 (float_of_int r.Harness.run.Cpu.cycles /. explicit))
         [ 3; 10; 25; 50 ]
  in
  table ~header:[ "Benchmark"; "3cyc"; "10cyc"; "25cyc"; "50cyc" ] [ row ];
  heading "Ablation 2: branch-predictor capacity vs the SW slowdown (RB)";
  let volatile =
    float_of_int (matrix ctx "RB" Runtime.Volatile).Harness.run.Cpu.cycles
  in
  let rows =
    par_map ctx
      (fun bits ->
        let cfg =
          { Config.default with Config.bp_table_bits = bits;
            bp_history_bits = min bits 12 }
        in
        let r = run_one ctx ~cfg "RB" Runtime.Sw in
        [
          Printf.sprintf "%d entries" (1 lsl bits);
          f3 (float_of_int r.Harness.run.Cpu.cycles /. volatile);
          with_commas r.Harness.run.Cpu.branch_mispredicts;
        ])
      [ 6; 8; 10; 12; 14 ]
  in
  table ~header:[ "Predictor"; "SW norm. time"; "mispredicts" ] rows;
  (* 7 distinct matrix cells + 3 reuse-off + 4 latency-sweep + 5
     predictor-sweep fresh cells *)
  credit_cells ctx 19

(* --- Table VI: relocation overhead ----------------------------------------------------- *)

(* Table VI contrasts designs by what object relocation costs: managed
   runtimes (Espresso, AutoPersist, go-pmem) must trace the heap and
   rewrite every pointer when a pool maps at a new address; position-
   independent pointers relocate for free.  Measured here on a real
   structure: re-open a 10k-node RB tree at a new base under our scheme
   (zero pointer updates), then execute the pointer-tracing rewrite the
   managed designs would need, in the same timing model. *)
let table6 _ctx =
  heading "Table VI (relocation): position-independent pointers vs tracing";
  let s_rel = Site.make "bench.relocation" in
  let keys = 10_000 in
  let rt = Runtime.create ~mode:Runtime.Hw () in
  let pool = Runtime.create_pool rt ~name:"r" ~size:(1 lsl 22) in
  let module Rb = Nvml_structures.Rb_tree in
  let tree = Rb.create rt (Runtime.Pool_region pool) in
  for i = 1 to keys do
    Rb.insert tree ~key:(Int64.of_int i) ~value:(Int64.of_int i)
  done;
  Runtime.set_root rt ~site:s_rel ~pool (Rb.header tree);
  (* Our scheme: crash, re-open at a new base — no pointer touched. *)
  Runtime.crash_and_restart rt;
  let s0 = Runtime.snapshot rt in
  ignore (Runtime.open_pool rt "r");
  let tree = Rb.attach rt (Runtime.get_root rt ~site:s_rel ~pool) in
  let reopen = Cpu.diff_snapshot (Runtime.snapshot rt) s0 in
  assert (Rb.find tree 5000L <> None);
  (* Tracing scheme: what Espresso-class designs execute on relocation —
     visit every object and rewrite each embedded pointer. *)
  let s1 = Runtime.snapshot rt in
  let updates = ref 0 in
  let rec retrace node =
    if not (Runtime.ptr_is_null rt ~site:s_rel node) then begin
      List.iter
        (fun off ->
          let p = Runtime.load_ptr rt ~site:s_rel node ~off in
          Runtime.instr rt 2 (* old-base test + rebase add *);
          Runtime.store_ptr rt ~site:s_rel node ~off p;
          incr updates)
        [ 16; 24; 32 ] (* left, right, parent *);
      retrace (Runtime.load_ptr rt ~site:s_rel node ~off:16);
      retrace (Runtime.load_ptr rt ~site:s_rel node ~off:24)
    end
  in
  retrace (Runtime.load_ptr rt ~site:s_rel (Rb.header tree) ~off:0);
  let trace = Cpu.diff_snapshot (Runtime.snapshot rt) s1 in
  (* tree population, the re-open, and one tracing rewrite per pointer *)
  Report.ops_add (keys + 1 + !updates);
  table
    ~header:[ "scheme"; "pointer updates"; "cycles" ]
    [
      [ "position-independent (this work)"; "0"; with_commas reopen.Cpu.cycles ];
      [
        "update-all-pointers tracing (Espresso/AutoPersist class)";
        with_commas !updates;
        with_commas trace.Cpu.cycles;
      ];
    ];
  Printf.printf
    "Re-opening the 10k-key tree costs %s cycles under relative pointers;\n\
     a tracing design rewrites %s pointers for %s cycles (%.0fx) — Table\n\
     VI's Low-vs-High relocation column, measured.\n"
    (with_commas reopen.Cpu.cycles) (with_commas !updates)
    (with_commas trace.Cpu.cycles)
    (float_of_int trace.Cpu.cycles /. float_of_int (max 1 reopen.Cpu.cycles))

(* --- extended structure set (extension) ----------------------------------------------- *)

(* Fig. 11 repeated over containers beyond Table III: a skip list, a
   B-tree map and a radix tree — further legacy libraries running
   unchanged on the same runtime. *)
let extended ctx =
  heading
    "Extension: execution time normalized to volatile, extended structures";
  let names =
    List.map
      (fun (module M : Nvml_structures.Intf.ORDERED_MAP) -> M.name)
      Nvml_structures.Registry.extended_maps
  in
  prefetch ctx
    (matrix_cells names
       [ Runtime.Explicit; Runtime.Volatile; Runtime.Sw; Runtime.Hw ]);
  let rows =
    List.map
      (fun name ->
        [
          name;
          f3 (norm_cycles ctx name Runtime.Explicit);
          f3 (norm_cycles ctx name Runtime.Sw);
          f3 (norm_cycles ctx name Runtime.Hw);
        ])
      names
  in
  table ~header:[ "Structure"; "Explicit"; "SW"; "HW" ] rows;
  credit_cells ctx (4 * List.length names);
  latency_table
    (List.map (fun n -> (n, (matrix ctx n Runtime.Hw).Harness.oplat)) names);
  latency_metrics "extended.hw"
    (result_oplats (List.map (fun n -> matrix ctx n Runtime.Hw) names));
  Printf.printf
    "The same ranking as Table III's set: SW-only slow, HW near-native,\n\
     user-transparent HW ahead of explicit handles.\n"

(* --- multi-pool scaling (extension) -------------------------------------------------- *)

(* The paper's workloads live in one pool, so the POLB never misses.
   This extension fixes a 64-pool working set (nodes assigned to pools
   by hash, so the memory layout and locality are identical across
   configurations) and sweeps only the POLB capacity, isolating the
   translation-capacity effect. *)
let multipool ctx =
  heading
    "Extension: POLB capacity under a 64-pool working set (HW, 4096-node \
     chain)";
  let s_mp = Site.make "bench.multipool" in
  let nodes = 4096 and npools = 64 in
  let pool_of_node i =
    (* splitmix-style hash so pool references interleave irregularly *)
    let h = (i * 0x9E3779B9) lxor (i lsr 7) in
    (h lsr 4) land (npools - 1)
  in
  let run polb_entries =
    let cfg = { Config.default with Config.polb_entries } in
    let rt = Runtime.create ~cfg ~mode:Runtime.Hw () in
    let pools =
      Array.init npools (fun i ->
          Runtime.create_pool rt ~name:(Fmt.str "p%d" i) ~size:(1 lsl 18))
    in
    let head = ref Ptr.null in
    for i = nodes - 1 downto 0 do
      let node =
        Runtime.alloc rt ~pool:pools.(pool_of_node i) ~persistent:true 16
      in
      Runtime.store_ptr rt ~site:s_mp node ~off:0 !head;
      Runtime.store_word rt ~site:s_mp node ~off:8 (Int64.of_int i);
      head := node
    done;
    let s0 = Runtime.snapshot rt in
    for _ = 1 to 10 do
      let node = ref !head in
      while not (Runtime.ptr_is_null rt ~site:s_mp !node) do
        ignore (Runtime.load_word rt ~site:s_mp !node ~off:8);
        node := Runtime.load_ptr rt ~site:s_mp !node ~off:0
      done
    done;
    Cpu.diff_snapshot (Runtime.snapshot rt) s0
  in
  let base = ref 1 in
  let rows =
    par_map ctx (fun entries -> (entries, run entries)) [ 128; 64; 32; 16; 8; 4 ]
  in
  List.iter (fun (entries, s) -> if entries = 128 then base := s.Cpu.cycles) rows;
  table
    ~header:[ "POLB entries"; "norm. time"; "POLB miss rate"; "POW walks" ]
    (List.map
       (fun (entries, s) ->
         [
           int_ entries;
           f3 (float_of_int s.Cpu.cycles /. float_of_int !base);
           pct
             (float_of_int s.Cpu.polb_misses
             /. float_of_int (max 1 s.Cpu.polb_accesses));
           with_commas s.Cpu.pow_walks;
         ])
       (List.rev rows));
  (* 6 POLB configurations x 10 traversals x one op per node *)
  Report.ops_add (6 * 10 * nodes);
  Printf.printf
    "Below the pool working set, POLB misses turn into POW walks — the\n\
     capacity cliff the paper's single-pool workloads never approach (its\n\
     32 entries are comfortable for realistic pool counts).\n"

(* --- transaction overhead (extension) ------------------------------------------------- *)

let txn_overhead _ctx =
  heading
    "Extension: undo-log transaction overhead (Sec. VI crash consistency)";
  let module Txn = Nvml_runtime.Txn in
  let s_tx = Site.make ~static:true "bench.txn" in
  let cells = 64 and rounds = 2000 in
  let run ~transactional =
    let rt = Runtime.create ~mode:Runtime.Hw () in
    let pool = Runtime.create_pool rt ~name:"t" ~size:(1 lsl 21) in
    let arr = Runtime.alloc rt ~pool ~persistent:true (cells * 8) in
    let txn = Txn.create rt ~pool () in
    let cpu = Runtime.cpu rt in
    let ol =
      Oplat.create
        ~cell:(if transactional then "txn/Hw" else "plain/Hw")
        ()
    in
    let s0 = Runtime.snapshot rt in
    for r = 1 to rounds do
      Oplat.op_begin ol cpu;
      if transactional then begin
        Txn.begin_ txn;
        for i = 0 to 3 do
          Txn.store_word txn ~site:s_tx arr
            ~off:(8 * ((r + i) mod cells))
            (Int64.of_int r)
        done;
        Txn.commit txn
      end
      else
        for i = 0 to 3 do
          Runtime.store_word rt ~site:s_tx arr
            ~off:(8 * ((r + i) mod cells))
            (Int64.of_int r)
        done;
      Oplat.op_end ol cpu (if transactional then "txn" else "stores")
    done;
    ((Cpu.diff_snapshot (Runtime.snapshot rt) s0).Cpu.cycles, ol)
  in
  let plain, ol_plain = run ~transactional:false in
  let tx, ol_tx = run ~transactional:true in
  Report.ops_add (2 * rounds);
  latency_metrics "txn.plain" [ ol_plain ];
  latency_metrics "txn.txn" [ ol_tx ];
  table
    ~header:[ "version"; "cycles"; "vs plain" ]
    [
      [ "plain stores"; with_commas plain; "1.000" ];
      [ "transactional stores"; with_commas tx;
        f3 (float_of_int tx /. float_of_int plain) ];
    ];
  Printf.printf
    "Each transactional store adds one log append (read old value + two\n\
     stores into the in-pool undo log) — the cost a compiler would insert\n\
     around library calls enclosed in persistent transactions.\n"

(* --- NVM latency and working-set sweeps (extension) ----------------------------------- *)

(* Two sensitivity studies the paper's evaluation fixes as constants:
   how the HW scheme's overhead over a volatile run scales with the
   NVM/DRAM latency ratio, and with the working-set size relative to
   the cache hierarchy. *)
let sweep ctx =
  heading "Extension: HW overhead vs NVM latency (RB, paper workload)";
  let spec = ctx.spec in
  (* Each (latency x mode) run is an independent cell; the row pairs up
     the volatile and HW results afterwards. *)
  let latencies = [ 120; 240; 480; 960 ] in
  let cells =
    List.concat_map
      (fun l -> [ (l, Runtime.Volatile); (l, Runtime.Hw) ])
      latencies
  in
  let results =
    List.combine cells
      (par_map ctx
         (fun (nvm_latency, mode) ->
           let cfg = { Config.default with Config.nvm_latency } in
           run_one ctx ~cfg "RB" mode)
         cells)
  in
  let rows =
    List.map
      (fun nvm_latency ->
        let vol = List.assoc (nvm_latency, Runtime.Volatile) results in
        let hw = List.assoc (nvm_latency, Runtime.Hw) results in
        [
          Printf.sprintf "%d cycles (%.1fx DRAM)" nvm_latency
            (float_of_int nvm_latency /. float_of_int Config.default.Config.dram_latency);
          f3
            (float_of_int hw.Harness.run.Cpu.cycles
            /. float_of_int vol.Harness.run.Cpu.cycles);
        ])
      latencies
  in
  table ~header:[ "NVM latency"; "HW / volatile" ] rows;
  credit_cells ctx (List.length cells);
  List.iter
    (fun nvm_latency ->
      let hw = List.assoc (nvm_latency, Runtime.Hw) results in
      let s = Latency.summary (Oplat.latency hw.Harness.oplat) in
      metric
        (Printf.sprintf "sweep.hw.nvm%d.latency.p99" nvm_latency)
        (float_of_int s.Latency.p99))
    latencies;
  latency_metrics "sweep.hw"
    (result_oplats
       (List.map (fun l -> List.assoc (l, Runtime.Hw) results) latencies));
  Printf.printf
    "At 120 cycles (DRAM-equal) the residue is pure translation cost; the\n\
     rest is the NVM medium itself, which every persistent design pays.\n";
  heading "Extension: HW overhead vs working-set size (RB)";
  let sizes = [ 1_000; 10_000; 50_000 ] in
  let cells =
    List.concat_map
      (fun r -> [ (r, Runtime.Volatile); (r, Runtime.Hw) ])
      sizes
  in
  let results =
    List.combine cells
      (par_map ctx
         (fun (records, mode) ->
           let s =
             { spec with Nvml_ycsb.Workload.record_count = records;
               operation_count = records * 10 }
           in
           Harness.run_benchmark "RB" ~mode s)
         cells)
  in
  let rows =
    List.map
      (fun records ->
        let vol = List.assoc (records, Runtime.Volatile) results in
        let hw = List.assoc (records, Runtime.Hw) results in
        [
          with_commas records;
          f3
            (float_of_int hw.Harness.run.Cpu.cycles
            /. float_of_int vol.Harness.run.Cpu.cycles);
          pct hw.Harness.run.Cpu.l3_hit_rate;
        ])
      sizes
  in
  table ~header:[ "records"; "HW / volatile"; "L3 hit rate" ] rows;
  (* working-set cells run records x 10 ops each, volatile + HW *)
  Report.ops_add (2 * List.fold_left (fun acc r -> acc + (r * 10)) 0 sizes);
  Printf.printf
    "Past the 2 MiB L3, more accesses reach the NVM medium and the 2x miss\n\
     latency shows — the overhead is the memory, not the pointer scheme.\n"

(* --- bechamel micro-benchmarks ------------------------------------------------------ *)

let micro _ctx =
  heading "Micro-benchmarks (Bechamel): core primitives";
  let open Bechamel in
  let mem = Nvml_simmem.Mem.create () in
  let pm = Nvml_pool.Pmop.create mem in
  let pool = Nvml_pool.Pmop.create_pool pm ~name:"m" ~size:(1 lsl 20) in
  let x = Xlate.make (Nvml_pool.Pmop.provider pm) in
  let rel = Nvml_pool.Pmop.pmalloc pm ~pool 64 in
  let va = Xlate.ra2va x rel in
  let cache = Nvml_arch.Cache.create ~sets:64 ~ways:8 ~index_shift:6 in
  let bp = Nvml_arch.Branch_predictor.create ~table_bits:12 ~history_bits:12 in
  let btree = Nvml_arch.Range_btree.create () in
  for i = 0 to 63 do
    Nvml_arch.Range_btree.insert btree
      ~base:(Int64.of_int (i * 65536)) ~size:32768L ~pool:i
  done;
  let counter = ref 0 in
  let lrec = Nvml_telemetry.Latency.create () in
  let tests =
    Test.make_grouped ~name:"core"
      [
        Test.make ~name:"tag-check (determineY)"
          (Staged.stage (fun () -> Ptr.is_relative rel));
        Test.make ~name:"determineX"
          (Staged.stage (fun () -> Checks.determine_x rel));
        Test.make ~name:"ra2va" (Staged.stage (fun () -> Xlate.ra2va x rel));
        Test.make ~name:"va2ra" (Staged.stage (fun () -> Xlate.va2ra x va));
        Test.make ~name:"pointerAssignment"
          (Staged.stage (fun () -> Checks.pointer_assignment x ~dst:rel ~value:va));
        Test.make ~name:"cache access"
          (Staged.stage (fun () ->
               incr counter;
               Nvml_arch.Cache.access cache (!counter land 0xFFFF)));
        Test.make ~name:"branch predict+update"
          (Staged.stage (fun () ->
               incr counter;
               Nvml_arch.Branch_predictor.branch bp ~pc:64 ~taken:(!counter land 3 = 0)));
        Test.make ~name:"VATB B-tree lookup"
          (Staged.stage (fun () ->
               incr counter;
               Nvml_arch.Range_btree.lookup btree
                 (Int64.of_int ((!counter land 63) * 65536 + 64))));
        (* Checksum guard: the CRC table is built once at module init,
           so per-call cost must stay table-lookup flat — a rebuild
           regression shows up here as a ~100x jump. *)
        Test.make ~name:"crc32 (8-word block)"
          (Staged.stage (fun () ->
               incr counter;
               Nvml_media.Crc.crc32_words
                 [ Int64.of_int !counter; 2L; 3L; 4L; 5L; 6L; 7L; 8L ]));
        Test.make ~name:"crc16_low48 (header word)"
          (Staged.stage (fun () ->
               incr counter;
               Nvml_media.Crc.crc16_low48 (Int64.of_int !counter)));
        (* Latency-recorder guard: [record] must stay a handful of int
           ops into a preallocated slot array — a boxing or resizing
           regression shows up here as a jump plus minor-heap traffic
           in the allocation check below. *)
        Test.make ~name:"latency record (HDR)"
          (Staged.stage (fun () ->
               incr counter;
               Nvml_telemetry.Latency.record lrec !counter));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.1f" e
        | _ -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  table ~header:[ "Primitive"; "ns/op" ] (List.sort compare !rows);
  (* Allocation guard for the hot-path recorder: 100k records must not
     touch the minor heap (a few words of slack absorb the boxed
     [Gc.minor_words] reads themselves). *)
  let lrec2 = Nvml_telemetry.Latency.create () in
  let w0 = Gc.minor_words () in
  let n = 100_000 in
  for i = 1 to n do
    Nvml_telemetry.Latency.record lrec2 i
  done;
  let words = Gc.minor_words () -. w0 in
  let per_op = if words < 64.0 then 0.0 else words /. float_of_int n in
  metric "micro.latency_record.minor_words_per_op" per_op;
  Printf.printf "Latency.record allocation: %g minor words/op (must be 0).\n"
    per_op

(* --- telemetry profile ---------------------------------------------------- *)

(* The most recent profile result, kept for the driver's [--stats FILE]
   sink (written after the experiment list finishes). *)
let last_profile : Nvml_kvstore.Profile.t option ref = ref None

(* The cross-layer telemetry profile (Section VII observability): run
   one benchmark through [Profile.run] — SW and HW cells in parallel
   through the pool, telemetry force-enabled in a private sink — and
   render the check-site profile, the lookaside hit rates, and the
   cycle attribution by stall source. *)
let profile ctx =
  let benchmark = "RB" in
  heading
    (Printf.sprintf
       "Telemetry profile: check sites, lookasides, cycle attribution (%s)"
       benchmark);
  let module Profile = Nvml_kvstore.Profile in
  let p =
    Profile.run ~par:(Nvml_exec.Pool.run ctx.pool) ~benchmark ctx.spec
  in
  Report.ops_add (2 * ctx.spec.Workload.operation_count) (* SW + HW cells *);
  last_profile := Some p;
  let dval name = try List.assoc name p.Profile.derived with Not_found -> nan in
  check_site_profile
    (List.map
       (fun r -> (r.Profile.site, r.Profile.static, r.Profile.checks))
       p.Profile.sites);
  let dynamic =
    List.length (List.filter (fun r -> not r.Profile.static) p.Profile.sites)
  in
  Printf.printf
    "%d of %d sites need dynamic checks (%s of sites, %s of executions).\n\
     Paper: ~42%% of pointer-operation sites cannot be resolved statically.\n"
    dynamic
    (List.length p.Profile.sites)
    (pct (dval "check_sites.dynamic_fraction"))
    (pct (dval "check_execs.dynamic_fraction"));
  lookaside_hit_rates
    [
      ("POLB", dval "polb.hit_rate");
      ("VALB", dval "valb.hit_rate");
      ("translation cache", dval "vspace.tc.hit_rate");
    ];
  let attr_counts (a : Cpu.attribution) =
    [ a.Cpu.base; a.Cpu.branch; a.Cpu.tlb; a.Cpu.cache; a.Cpu.mem;
      a.Cpu.xlate; a.Cpu.storep ]
  in
  cycle_attribution
    ~sources:[ "base"; "branch"; "tlb"; "cache"; "mem"; "xlate"; "storeP" ]
    [
      ("SW", attr_counts p.Profile.sw.Harness.attr);
      ("HW", attr_counts p.Profile.hw.Harness.attr);
    ];
  Printf.printf "SW runs %.2fx slower than HW on this benchmark.\n"
    (dval "sw.slowdown");
  List.iter
    (fun (k, v) -> metric (Printf.sprintf "profile.%s.%s" benchmark k) v)
    p.Profile.derived

(* --- crash-point fault injection ------------------------------------------ *)

(* Systematic crash-point sweep over the persistence stack: every chosen
   persistence event (persistent store, storeP retirement, undo-log
   append, allocator metadata write) of each workload is replayed on a
   fresh machine that loses power exactly there; after reboot, pool
   re-open and log recovery the checker validates structural invariants,
   pointer reachability, transaction atomicity and the persistent
   freelist.  Each crash point re-runs the whole workload, so the matrix
   uses its own bounded sizes rather than [ctx.spec]; a quick-scale
   spec shrinks them further. *)
let faultinject ctx =
  let module F = Nvml_faultinject.Faultinject in
  heading "Crash-point fault injection: recovery check matrix";
  let quick = ctx.spec.Workload.operation_count < 100_000 in
  let kv_ops = if quick then 40 else 100 in
  let cases =
    [
      (F.counter_workload ~ops:3 (), { F.default_spec with torn = true });
      ( F.kv_workload ~structure:"RB" ~records:15 ~ops:kv_ops (),
        if quick then { F.default_spec with every_n = 3 } else F.default_spec
      );
      ( F.kv_workload ~structure:"AVL" ~records:10 ~ops:40 (),
        { F.default_spec with every_n = 5; torn = true } );
      ( F.kv_workload ~structure:"BTree" ~records:10 ~ops:40 (),
        { F.default_spec with every_n = 5; torn = true; seed = 7 } );
    ]
  in
  let reports =
    List.map
      (fun (w, spec) -> F.run ~par:(Nvml_exec.Pool.run ctx.pool) ~spec w)
      cases
  in
  List.iter
    (fun (r : F.report) ->
      (* reference pass + one full workload replay per crash point *)
      Report.ops_add ((List.length r.F.outcomes + 1) * r.F.ops))
    reports;
  table
    ~header:
      [ "workload"; "ops"; "events"; "points"; "clean"; "rolled back";
        "torn"; "violations" ]
    (List.map
       (fun (r : F.report) ->
         [
           r.F.workload; int_ r.F.ops; int_ r.F.events;
           int_ (List.length r.F.outcomes); int_ r.F.clean;
           int_ r.F.rolled_back; int_ r.F.torn_injected;
           int_ (List.length r.F.violations);
         ])
       reports);
  List.iter
    (fun (r : F.report) ->
      metric
        (Printf.sprintf "faultinject.%s.points" r.F.workload)
        (float_of_int (List.length r.F.outcomes));
      metric
        (Printf.sprintf "faultinject.%s.violations" r.F.workload)
        (float_of_int (List.length r.F.violations)))
    reports;
  let violations =
    List.fold_left
      (fun acc (r : F.report) -> acc + List.length r.F.violations)
      0 reports
  in
  if violations = 0 then
    Printf.printf "every crash point recovered to a consistent state.\n"
  else begin
    Printf.printf "%d crash points violated recovery invariants:\n" violations;
    List.iter
      (fun (r : F.report) ->
        if r.F.violations <> [] then Fmt.pr "%a@." F.pp_report r)
      reports
  end

(* --- media scrub --------------------------------------------------------- *)

(* Detection/repair coverage of the integrity stack, scored against the
   injector's own ground truth: each cell predicts every finding the
   scrub must produce from the pure fault-placement function, then runs
   the scrub and diffs.  A non-zero mispredict column is a bug. *)
let scrub ctx =
  let module Media = Nvml_media.Media in
  let module Mediacheck = Nvml_pool.Mediacheck in
  heading "Media errors: scrub detection / repair coverage";
  let quick = ctx.spec.Workload.operation_count < 100_000 in
  let seeds = if quick then 8 else 32 in
  let rows =
    [
      ("5e-4", "all", 5e-4, [], true);
      ("2e-3", "all", 2e-3, [], true);
      ("8e-3", "all", 8e-3, [], true);
      ("8e-3", "flip", 8e-3, [ Media.Bit_flip ], true);
      ("8e-3", "poison", 8e-3, [ Media.Poison_line ], true);
      ("8e-3", "transient", 8e-3, [ Media.Transient ], true);
      ("8e-3", "all / no repair", 8e-3, [], false);
    ]
  in
  let cells =
    List.map
      (fun (_, _, rate, kinds, repair) ->
        par_map ctx
          (fun seed ->
            Mediacheck.run_cell
              { Mediacheck.pools = 3; records = 48; rate; kinds; seed; repair })
          (List.init seeds (fun i -> i + 1)))
      rows
  in
  let sum f cs = List.fold_left (fun acc c -> acc + f c) 0 cs in
  let sites = sum (fun (c : Mediacheck.cell) -> c.Mediacheck.sites) in
  let detected =
    sum (fun (c : Mediacheck.cell) -> c.Mediacheck.report.Nvml_pool.Scrub.detected)
  in
  let repaired =
    sum (fun (c : Mediacheck.cell) -> c.Mediacheck.report.Nvml_pool.Scrub.repaired)
  in
  let unrepairable =
    sum (fun (c : Mediacheck.cell) ->
        c.Mediacheck.report.Nvml_pool.Scrub.unrepairable)
  in
  let lost =
    sum (fun (c : Mediacheck.cell) ->
        c.Mediacheck.report.Nvml_pool.Scrub.lost_objects)
  in
  let mispred =
    sum (fun (c : Mediacheck.cell) -> List.length c.Mediacheck.mispredictions)
  in
  table
    ~header:
      [ "rate"; "kinds"; "repair"; "seeds"; "sites"; "detected"; "repaired";
        "unrepairable"; "lost"; "mispredict" ]
    (List.map2
       (fun (rate_s, kinds_s, _, _, repair) cs ->
         [
           rate_s; kinds_s; (if repair then "yes" else "no"); int_ seeds;
           int_ (sites cs); int_ (detected cs); int_ (repaired cs);
           int_ (unrepairable cs); int_ (lost cs); int_ (mispred cs);
         ])
       rows cells);
  let all = List.concat cells in
  (* one populate-seal-scrub pass over pools x records per cell *)
  Report.ops_add (List.length all * 3 * 48);
  metric "scrub.sites" (float_of_int (sites all));
  metric "scrub.detected" (float_of_int (detected all));
  metric "scrub.repaired" (float_of_int (repaired all));
  metric "scrub.unrepairable" (float_of_int (unrepairable all));
  metric "scrub.mispredictions" (float_of_int (mispred all));
  if mispred all = 0 then
    Printf.printf
      "every cell's scrub report matches the injector's ground truth exactly\n\
       (all planted metadata corruptions detected; every replica-coverable\n\
       superblock loss repaired; unrepairable damage leaves the pool degraded).\n"
  else begin
    Printf.printf "%d MISPREDICTIONS — the scrub and the injector disagree:\n"
      (mispred all);
    List.iter
      (fun (c : Mediacheck.cell) ->
        List.iter
          (fun m -> Printf.printf "  seed %d: %s\n" c.Mediacheck.seed m)
          c.Mediacheck.mispredictions)
      all
  end;
  subheading "checksum overhead";
  (* The header CRC-16 rides in the spare high bits of the size word the
     allocator already reads and writes, so the hot path carries zero
     extra memory traffic; only the (rare) seal/verify protocol touches
     additional words.  The pinned profile outputs are byte-identical to
     the pre-integrity baseline — the hot-path cost is exactly zero, not
     merely under the 5% budget. *)
  table
    ~header:[ "operation"; "extra word reads"; "extra word writes"; "when" ]
    [
      [ "pmalloc / pfree"; "0"; "0"; "every allocation (CRC in spare bits)" ];
      [ "attach verify"; "8"; "0"; "once per pool open" ];
      [ "first write of a session"; "8"; "1"; "once per pool per session" ];
      [ "seal (detach/scrub)"; "7"; "8"; "once per pool close" ];
    ];
  metric "scrub.overhead.hot_path_words" 0.0;
  Printf.printf
    "hot-path overhead: 0 extra words per allocation; integrity traffic is\n\
     confined to pool open/close (15-16 word ops per pool per session).\n"

(* --- serving ------------------------------------------------------------- *)

(* The serving engine at scale: the four serving mixes through the
   sharded, batched, front-cached engine (fast functional core — the
   mixes run millions of requests, and throughput/percentiles must be
   deterministic for the --metrics-json pinning).  Shard cells run
   through the worker pool; the merge is in shard-index order, so the
   metrics are byte-identical across --jobs.  Throughput is simulated
   ops per second (requests / (max shard cycles / clock)); in the fast
   core, cycles are instruction counts. *)
let serving ctx =
  let module Serving = Nvml_kvstore.Serving in
  heading "Serving at scale: sharded pools, batching, DRAM front cache";
  let quick = ctx.spec.Workload.operation_count < 100_000 in
  let records = if quick then 20_000 else 1_000_000 in
  let ops = if quick then 50_000 else 2_500_000 in
  let shards = 8 and batch = 32 in
  let front_cache = records / 8 in
  let mixes = Workload.serving_mixes ~records ~ops in
  Printf.printf
    "%d records, %d ops per mix; Hash x %d shards, batch %d, front cache %d\n"
    records ops shards batch front_cache;
  let results =
    Runtime.with_default_timing false @@ fun () ->
    List.map
      (fun (name, spec) ->
        if ctx.verbose then Printf.eprintf "  [run] serving / %s...\n%!" name;
        let config =
          Serving.default_config ~structure:"Hash" ~mode:Runtime.Hw ~shards
            ~batch ~front_cache spec
        in
        (name, Serving.run ~par:(Nvml_exec.Pool.run ctx.pool) config))
      mixes
  in
  table
    ~header:
      [ "mix"; "requests"; "Mops/s"; "p50"; "p99"; "p999"; "cache hit";
        "write-backs" ]
    (List.map
       (fun (name, (r : Serving.t)) ->
         let s = Latency.summary (Oplat.latency r.Serving.oplat) in
         [
           name; int_ r.Serving.ops; f2 (Serving.ops_per_sec r /. 1e6);
           int_ s.Latency.p50; int_ s.Latency.p99; int_ s.Latency.p999;
           pct (Serving.hit_rate r.Serving.cache);
           int_ r.Serving.cache.Serving.writebacks;
         ])
       results);
  List.iter
    (fun (name, (r : Serving.t)) ->
      let prefix = "serving." ^ name in
      metric (prefix ^ ".ops") (float_of_int r.Serving.ops);
      metric (prefix ^ ".ops_per_s") (Serving.ops_per_sec r);
      metric (prefix ^ ".shards") (float_of_int r.Serving.shards);
      metric (prefix ^ ".run_cycles_max") (float_of_int r.Serving.run_cycles_max);
      metric (prefix ^ ".cache.hit_rate") (Serving.hit_rate r.Serving.cache);
      metric
        (prefix ^ ".cache.writebacks")
        (float_of_int r.Serving.cache.Serving.writebacks);
      metric (prefix ^ ".digest") (Int64.to_float r.Serving.digest);
      latency_metrics prefix [ r.Serving.oplat ];
      Report.ops_add r.Serving.ops)
    results;
  Printf.printf
    "service time is the slowest shard; front-cache hits never touch the\n\
     persistent structure, and every dirty entry is written back before\n\
     detach, so final pool contents match a cache-disabled run.\n"

(* --- multi-core contention ----------------------------------------------- *)

(* The `concurrent` experiment: contended episodes of the canonical
   multi-core workload (shared FliT-marked counter + linked set) on the
   cycle-accurate machine, plus the crash-at-any-event durability sweep
   over a seeded 2-core interleaving.  Episodes are deterministic
   functions of (cores, ops, scheduler seed) and the sweep's crash
   passes are share-nothing, so every metric is byte-identical across
   --jobs. *)
let concurrent ctx =
  let module Cluster = Nvml_runtime.Cluster in
  let module Multicore = Nvml_arch.Multicore in
  let module Flit = Nvml_structures.Flit in
  let module Conc_counter = Nvml_structures.Conc_counter in
  let module Conc_list = Nvml_structures.Conc_list in
  let module Conc_workload = Nvml_structures.Conc_workload in
  let module F = Nvml_faultinject.Faultinject in
  heading "Multi-core contention: coherence, flush elision, durability";
  let quick = ctx.spec.Workload.operation_count < 100_000 in
  let ops_per_core = if quick then 200 else 2_000 in
  let episode cores =
    let rt = Runtime.create ~mode:Runtime.Hw ~timing:true () in
    let pool = Runtime.create_pool rt ~name:"conc" ~size:(1 lsl 24) in
    let s = Conc_workload.setup ~sched_seed:7 ~cores ~ops_per_core rt ~pool in
    Conc_workload.run s;
    Report.ops_add (cores * ops_per_core);
    s
  in
  let core_counts = if quick then [ 2 ] else [ 2; 4 ] in
  let episodes = List.map (fun c -> (c, episode c)) core_counts in
  table
    ~header:
      [ "cores"; "ops/core"; "steps"; "contended"; "switches"; "invalidations";
        "flushes issued"; "flushes elided"; "max core cycles" ]
    (List.map
       (fun (cores, s) ->
         let st = Cluster.stats s.Conc_workload.cluster in
         let fc = Conc_counter.flit s.Conc_workload.counter in
         let fl = Conc_list.flit s.Conc_workload.list in
         let max_cycles =
           Array.fold_left
             (fun acc cpu -> max acc (Cpu.cycles cpu))
             0
             (Multicore.cores (Cluster.machine s.Conc_workload.cluster))
         in
         [
           int_ cores; int_ ops_per_core; int_ st.Multicore.steps;
           int_ st.Multicore.contended_steps; int_ st.Multicore.switches;
           int_ st.Multicore.invalidations;
           int_ (Flit.issued fc + Flit.issued fl);
           int_ (Flit.elided fc + Flit.elided fl);
           int_ max_cycles;
         ])
       episodes);
  List.iter
    (fun (cores, s) ->
      let prefix = Printf.sprintf "conc.c%d" cores in
      let st = Cluster.stats s.Conc_workload.cluster in
      let fc = Conc_counter.flit s.Conc_workload.counter in
      let fl = Conc_list.flit s.Conc_workload.list in
      metric (prefix ^ ".steps") (float_of_int st.Multicore.steps);
      metric
        (prefix ^ ".contended_steps")
        (float_of_int st.Multicore.contended_steps);
      metric (prefix ^ ".switches") (float_of_int st.Multicore.switches);
      metric
        (prefix ^ ".coherence_invalidations")
        (float_of_int st.Multicore.invalidations);
      metric
        (prefix ^ ".flit.flushes_issued")
        (float_of_int (Flit.issued fc + Flit.issued fl));
      metric
        (prefix ^ ".flit.flushes_elided")
        (float_of_int (Flit.elided fc + Flit.elided fl));
      metric
        (prefix ^ ".flit.writer_flushes")
        (float_of_int (Flit.writer_flushes fc + Flit.writer_flushes fl));
      Array.iteri
        (fun i cpu ->
          metric
            (Printf.sprintf "%s.cycles.core%d" prefix i)
            (float_of_int (Cpu.cycles cpu)))
        (Multicore.cores (Cluster.machine s.Conc_workload.cluster)))
    episodes;
  subheading "Durability: crash at every event of a seeded 2-core schedule";
  let spec =
    {
      F.default_conc_spec with
      F.ops_per_core = (if quick then 4 else 8);
      conc_every_n = (if quick then 2 else 1);
    }
  in
  let r = F.run_conc ~par:(Nvml_exec.Pool.run ctx.pool) ~spec () in
  (* reference pass + one full workload replay per crash point *)
  Report.ops_add ((List.length r.F.conc_outcomes + 1) * r.F.conc_ops);
  metric "conc.fi.events" (float_of_int r.F.conc_events);
  metric "conc.fi.points" (float_of_int (List.length r.F.conc_outcomes));
  metric "conc.fi.violations"
    (float_of_int (List.length r.F.conc_violation_list));
  if r.F.conc_violation_list = [] then
    Printf.printf
      "%d crash points over the %d-core interleaving: every recovered state \
       sits between the completed and invoked operation sets.\n"
      (List.length r.F.conc_outcomes)
      r.F.conc_cores
  else Fmt.pr "%a@." F.pp_conc_report r

(* --- persistency-model sweep ---------------------------------------- *)

(* The `persist` experiment: the retention-model spectrum (eager,
   epoch:1, epoch:8, epoch:64, lazy) across two index structures, on
   both axes of the trade:

   - cycles: the cycle-accurate harness measures each model's drain
     traffic (flush+fence µ-events).  epoch:1 — a synchronous
     flush+fence at every operation boundary, the legacy software
     discipline — is the expensive end; wider epochs coalesce dirty
     lines and save most of it; eager is the paper's hardware ideal
     (in-place persistence, no drain traffic at all).
   - loss exposure: a faultinject sweep per model, whose contract
     oracle predicts exactly which crash points lose a committed op
     suffix; any misprediction is a hard failure, so the exposure
     numbers are verified, not estimated.

   Every cell is a share-nothing machine, so the metrics are
   byte-identical across --jobs. *)
let persist ctx =
  let module Persist = Nvml_runtime.Persist in
  let module F = Nvml_faultinject.Faultinject in
  heading "Persistency models: drain traffic saved vs suffix-loss exposure";
  let quick = ctx.spec.Workload.operation_count < 100_000 in
  let records = if quick then 1_000 else 5_000 in
  let ops = if quick then 500 else 2_500 in
  (* Write-heavy stream: the trade only shows on the write path (reads
     never dirty a line), and the latest-skewed updates give wider
     epochs hot lines to coalesce. *)
  let kspec =
    {
      ctx.spec with
      Workload.record_count = records;
      operation_count = ops;
      read_proportion = 0.5;
      update_proportion = 0.45;
      insert_proportion = 0.05;
    }
  in
  let models =
    [
      Persist.Eager;
      Persist.Epoch { interval = 1 };
      Persist.Epoch { interval = 8 };
      Persist.Epoch { interval = 64 };
      Persist.Lazy_on_detach;
    ]
  in
  (* Metric keys must stay dot-separated: epoch:8 -> epoch_8. *)
  let mkey m =
    String.map (fun c -> if c = ':' then '_' else c) (Persist.model_name m)
  in
  let structures = [ "RB"; "Hash" ] in
  let cells =
    List.concat_map (fun s -> List.map (fun m -> (s, m)) models) structures
  in
  let results =
    par_map ctx
      (fun (s, m) ->
        if ctx.verbose then
          Printf.eprintf "  [run] persist / %s / %s...\n%!" s
            (Persist.model_name m);
        ((s, m), Harness.run_benchmark s ~mode:Runtime.Hw ~persist:m kspec))
      cells
  in
  Report.ops_add (List.length cells * ops);
  let cycles_of s m =
    let (_, r) =
      List.find (fun ((s', m'), _) -> s' = s && m' = m) results
    in
    r.Harness.run.Cpu.cycles
  in
  Printf.printf "%d records + %d ops per cell, HW mode, cycle-accurate\n"
    records ops;
  table
    ~header:
      [ "structure"; "model"; "run cycles"; "vs epoch:1"; "drains"; "flushes";
        "fences"; "dirty words" ]
    (List.map
       (fun ((s, m), (r : Harness.result)) ->
         let c = r.Harness.run.Cpu.cycles in
         let e1 = cycles_of s (Persist.Epoch { interval = 1 }) in
         let vs =
           if Persist.is_eager m then "--"
           else Printf.sprintf "%+.1f%%"
               (100. *. (float_of_int c -. float_of_int e1) /. float_of_int e1)
         in
         let p = r.Harness.persist in
         [
           s; Persist.model_name m; with_commas c; vs;
           int_ p.Harness.drains; int_ p.Harness.flushes;
           int_ p.Harness.fences; int_ p.Harness.buffered;
         ])
       results);
  List.iter
    (fun ((s, m), (r : Harness.result)) ->
      let prefix = Printf.sprintf "persist.%s.%s" s (mkey m) in
      let p = r.Harness.persist in
      metric (prefix ^ ".run_cycles") (float_of_int r.Harness.run.Cpu.cycles);
      metric (prefix ^ ".drains") (float_of_int p.Harness.drains);
      metric (prefix ^ ".flushes") (float_of_int p.Harness.flushes);
      metric (prefix ^ ".fences") (float_of_int p.Harness.fences);
      metric (prefix ^ ".buffered") (float_of_int p.Harness.buffered);
      if (not (Persist.is_eager m)) && m <> Persist.Epoch { interval = 1 }
      then begin
        let e1 = float_of_int (cycles_of s (Persist.Epoch { interval = 1 })) in
        metric
          (prefix ^ ".savings_vs_epoch1")
          ((e1 -. float_of_int r.Harness.run.Cpu.cycles) /. e1)
      end)
    results;
  (* Loss-exposure axis: one contract-verified crash sweep per model
     (fast functional core; the verdicts are timing-independent). *)
  subheading "verified loss exposure (faultinject contract oracle)";
  let fi_records = 10 and fi_ops = 30 in
  let sweeps =
    List.map
      (fun m ->
        if ctx.verbose then
          Printf.eprintf "  [run] persist / faultinject / %s...\n%!"
            (Persist.model_name m);
        let w = F.kv_workload ~structure:"RB" ~records:fi_records ~ops:fi_ops () in
        let r =
          F.run ~par:(Nvml_exec.Pool.run ctx.pool) ~persist:m
            ~spec:{ F.default_spec with F.torn = true }
            w
        in
        Report.ops_add ((List.length r.F.outcomes + 1) * fi_ops);
        (m, r))
      models
  in
  table
    ~header:
      [ "model"; "crash points"; "suffix lost"; "max ops lost"; "violations" ]
    (List.map
       (fun (m, (r : F.report)) ->
         let max_lost =
           List.fold_left (fun acc o -> max acc o.F.lost_ops) 0 r.F.outcomes
         in
         [
           Persist.model_name m; int_ (List.length r.F.outcomes);
           int_ r.F.suffix_lost; int_ max_lost;
           int_ (List.length r.F.violations);
         ])
       sweeps);
  let total_violations =
    List.fold_left
      (fun acc (_, (r : F.report)) -> acc + List.length r.F.violations)
      0 sweeps
  in
  List.iter
    (fun (m, (r : F.report)) ->
      let prefix = "persist.fi." ^ mkey m in
      let max_lost =
        List.fold_left (fun acc o -> max acc o.F.lost_ops) 0 r.F.outcomes
      in
      metric (prefix ^ ".points") (float_of_int (List.length r.F.outcomes));
      metric (prefix ^ ".suffix_lost") (float_of_int r.F.suffix_lost);
      metric (prefix ^ ".max_ops_lost") (float_of_int max_lost);
      metric (prefix ^ ".violations")
        (float_of_int (List.length r.F.violations)))
    sweeps;
  metric "persist.mispredictions" (float_of_int total_violations);
  if total_violations = 0 then
    Printf.printf
      "every model kept its contract: at each crash point recovery landed on\n\
       exactly the epoch boundary the oracle predicted (eager loses nothing;\n\
       epoch:N at most its open window; lazy everything since attach).\n"
  else
    List.iter
      (fun (m, (r : F.report)) ->
        List.iter
          (fun (p, v) ->
            Printf.printf "  %s point %d: %s\n" (Persist.model_name m) p v)
          r.F.violations)
      sweeps
