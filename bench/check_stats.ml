(* Schema check for the bench driver's telemetry outputs.

     check_stats.exe STATS.json           assert the stats document
                                          parses and carries the keys
                                          the perf trajectory reads
     check_stats.exe --same A B           assert byte equality (the
                                          --jobs determinism check)
     check_stats.exe --fuzz STATS.json    assert the fuzz.* counters a
                                          `nvml fuzz --stats` run must
                                          produce
     check_stats.exe --media STATS.json   assert the media.* counters a
                                          `nvml scrub --stats` run must
                                          produce
     check_stats.exe --bench BENCH.json   assert the perf-trajectory
                                          document (BENCH_<n>.json) is
                                          well-formed; with
                                          --baseline BASE.json
                                          [--max-regress F] additionally
                                          fail if fast-mode wall-clock
                                          regressed by more than F
                                          (default 1.2, i.e. +20%) *)

module Json = Nvml_telemetry.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline m;
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_stats path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  List.iter
    (fun key ->
      match Json.path [ "derived"; key ] doc with
      | Some (Json.Float _ | Json.Int _) -> ()
      | Some _ -> fail "%s: derived.%s is not a number" path key
      | None -> fail "%s: missing derived.%s" path key)
    [ "valb.hit_rate"; "polb.hit_rate"; "check_sites.dynamic_fraction" ];
  (match Json.member "counters" doc with
  | Some (Json.Obj (_ :: _)) -> ()
  | _ -> fail "%s: missing or empty counters object" path);
  Printf.printf "%s: ok\n" path

let check_fuzz path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  let counter key =
    match Json.path [ "counters"; key ] doc with
    | Some (Json.Int n) -> n
    | Some _ -> fail "%s: counters.%s is not an integer" path key
    | None -> fail "%s: missing counters.%s" path key
  in
  let runs = counter "fuzz.runs" in
  let ops = counter "fuzz.ops" in
  if runs <= 0 then fail "%s: fuzz.runs is %d, expected > 0" path runs;
  if ops <= 0 then fail "%s: fuzz.ops is %d, expected > 0" path ops;
  let violations = counter "fuzz.violations" in
  if violations < 0 then fail "%s: negative fuzz.violations" path;
  ignore (counter "fuzz.shrink_replays");
  Printf.printf "%s: ok (fuzz.runs=%d fuzz.ops=%d fuzz.violations=%d)\n" path
    runs ops violations

let check_media path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  let counter key =
    match Json.path [ "counters"; key ] doc with
    | Some (Json.Int n) -> n
    | Some _ -> fail "%s: counters.%s is not an integer" path key
    | None -> fail "%s: missing counters.%s" path key
  in
  let runs = counter "media.scrub.runs" in
  let pools = counter "media.scrub.pools" in
  if runs <= 0 then fail "%s: media.scrub.runs is %d, expected > 0" path runs;
  if pools <= 0 then fail "%s: media.scrub.pools is %d, expected > 0" path pools;
  let detected = counter "media.scrub.detected" in
  let repaired = counter "media.scrub.repaired" in
  if repaired > detected then
    fail "%s: media.scrub.repaired (%d) exceeds detected (%d)" path repaired
      detected;
  List.iter
    (fun key -> if counter key < 0 then fail "%s: negative %s" path key)
    [
      "media.scrub.unrepairable"; "media.scrub.lost_objects";
      "media.read.flips"; "media.read.poisons"; "media.read.transient_faults";
      "media.read.retries"; "media.healed_words"; "media.seals";
      "media.writes_refused"; "media.attach.verified"; "media.attach.dirty";
      "media.attach.degraded";
    ];
  Printf.printf
    "%s: ok (media.scrub.runs=%d pools=%d detected=%d repaired=%d)\n" path runs
    pools detected repaired

let parse_doc path =
  match Json.of_string (read_file path) with
  | Ok doc -> doc
  | Error msg -> fail "%s: invalid JSON: %s" path msg

let number = function
  | Some (Json.Int n) -> Some (float_of_int n)
  | Some (Json.Float f) -> Some f
  | _ -> None

let check_bench ?baseline ?(max_regress = 1.2) path =
  let doc = parse_doc path in
  (match Json.member "kind" doc with
  | Some (Json.String "bench-trajectory") -> ()
  | _ -> fail "%s: kind is not \"bench-trajectory\"" path);
  let num keys =
    match number (Json.path keys doc) with
    | Some f -> f
    | None -> fail "%s: missing numeric %s" path (String.concat "." keys)
  in
  let suite = num [ "suite_wall_s" ] in
  if suite <= 0.0 then fail "%s: suite_wall_s is not positive" path;
  let fast = num [ "mode_breakdown"; "fast_wall_s" ] in
  let cycle = num [ "mode_breakdown"; "cycle_wall_s" ] in
  let other = num [ "mode_breakdown"; "other_wall_s" ] in
  if fast < 0.0 || cycle < 0.0 || other < 0.0 then
    fail "%s: negative mode breakdown entry" path;
  if fast +. cycle +. other > suite *. 1.05 +. 0.05 then
    fail "%s: mode breakdown (%.3f) exceeds suite_wall_s (%.3f)" path
      (fast +. cycle +. other) suite;
  (match Json.member "experiments" doc with
  | Some (Json.List (_ :: _ as exps)) ->
      List.iter
        (fun e ->
          let name =
            match Json.member "name" e with
            | Some (Json.String s) -> s
            | _ -> fail "%s: experiment entry without a name" path
          in
          (match Json.member "mode" e with
          | Some (Json.String ("fast" | "cycle" | "other")) -> ()
          | _ -> fail "%s: %s: bad mode (want fast|cycle|other)" path name);
          List.iter
            (fun key ->
              match number (Json.member key e) with
              | Some f when f >= 0.0 -> ()
              | Some _ -> fail "%s: %s: negative %s" path name key
              | None -> fail "%s: %s: missing numeric %s" path name key)
            [ "wall_s"; "ops"; "ops_per_s" ])
        exps
  | _ -> fail "%s: missing or empty experiments list" path);
  (match baseline with
  | None -> ()
  | Some base_path ->
      let base = parse_doc base_path in
      let base_fast =
        match number (Json.path [ "mode_breakdown"; "fast_wall_s" ] base) with
        | Some f -> f
        | None -> fail "%s: missing mode_breakdown.fast_wall_s" base_path
      in
      if base_fast > 0.0 && fast > base_fast *. max_regress then
        fail
          "%s: fast-mode wall-clock regressed: %.3fs > %.3fs (baseline %.3fs \
           x %.2f)"
          path fast (base_fast *. max_regress) base_fast max_regress;
      Printf.printf
        "%s: fast-mode wall %.3fs within %.2fx of baseline %.3fs\n" path fast
        max_regress base_fast);
  Printf.printf "%s: ok (suite %.3fs; fast %.3fs, cycle %.3fs, other %.3fs)\n"
    path suite fast cycle other

let () =
  match Array.to_list Sys.argv with
  | [ _; "--same"; a; b ] ->
      if read_file a <> read_file b then fail "%s and %s differ" a b
  | [ _; "--fuzz"; path ] -> check_fuzz path
  | [ _; "--media"; path ] -> check_media path
  | [ _; "--bench"; path ] -> check_bench path
  | [ _; "--bench"; path; "--baseline"; base ] -> check_bench ~baseline:base path
  | [ _; "--bench"; path; "--baseline"; base; "--max-regress"; f ] -> (
      match float_of_string_opt f with
      | Some max_regress when max_regress > 0.0 ->
          check_bench ~baseline:base ~max_regress path
      | _ -> fail "--max-regress expects a positive float, got %S" f)
  | [ _; path ] -> check_stats path
  | _ ->
      fail
        "usage: check_stats [--same A B | --fuzz STATS.json | --media \
         STATS.json | --bench BENCH.json [--baseline BASE.json \
         [--max-regress F]] | STATS.json]"
