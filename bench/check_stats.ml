(* Schema check for the bench driver's telemetry outputs.

     check_stats.exe STATS.json           assert the stats document
                                          parses and carries the keys
                                          the perf trajectory reads
     check_stats.exe --same A B           assert byte equality (the
                                          --jobs determinism check) *)

module Json = Nvml_telemetry.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline m;
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_stats path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  List.iter
    (fun key ->
      match Json.path [ "derived"; key ] doc with
      | Some (Json.Float _ | Json.Int _) -> ()
      | Some _ -> fail "%s: derived.%s is not a number" path key
      | None -> fail "%s: missing derived.%s" path key)
    [ "valb.hit_rate"; "polb.hit_rate"; "check_sites.dynamic_fraction" ];
  (match Json.member "counters" doc with
  | Some (Json.Obj (_ :: _)) -> ()
  | _ -> fail "%s: missing or empty counters object" path);
  Printf.printf "%s: ok\n" path

let () =
  match Array.to_list Sys.argv with
  | [ _; "--same"; a; b ] ->
      if read_file a <> read_file b then fail "%s and %s differ" a b
  | [ _; path ] -> check_stats path
  | _ -> fail "usage: check_stats [--same A B | STATS.json]"
