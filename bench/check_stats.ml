(* Schema check for the bench driver's telemetry outputs.

     check_stats.exe STATS.json           assert the stats document
                                          parses and carries the keys
                                          the perf trajectory reads
     check_stats.exe --same A B           assert byte equality (the
                                          --jobs determinism check)
     check_stats.exe --fuzz STATS.json    assert the fuzz.* counters a
                                          `nvml fuzz --stats` run must
                                          produce *)

module Json = Nvml_telemetry.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline m;
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_stats path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  List.iter
    (fun key ->
      match Json.path [ "derived"; key ] doc with
      | Some (Json.Float _ | Json.Int _) -> ()
      | Some _ -> fail "%s: derived.%s is not a number" path key
      | None -> fail "%s: missing derived.%s" path key)
    [ "valb.hit_rate"; "polb.hit_rate"; "check_sites.dynamic_fraction" ];
  (match Json.member "counters" doc with
  | Some (Json.Obj (_ :: _)) -> ()
  | _ -> fail "%s: missing or empty counters object" path);
  Printf.printf "%s: ok\n" path

let check_fuzz path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  let counter key =
    match Json.path [ "counters"; key ] doc with
    | Some (Json.Int n) -> n
    | Some _ -> fail "%s: counters.%s is not an integer" path key
    | None -> fail "%s: missing counters.%s" path key
  in
  let runs = counter "fuzz.runs" in
  let ops = counter "fuzz.ops" in
  if runs <= 0 then fail "%s: fuzz.runs is %d, expected > 0" path runs;
  if ops <= 0 then fail "%s: fuzz.ops is %d, expected > 0" path ops;
  let violations = counter "fuzz.violations" in
  if violations < 0 then fail "%s: negative fuzz.violations" path;
  ignore (counter "fuzz.shrink_replays");
  Printf.printf "%s: ok (fuzz.runs=%d fuzz.ops=%d fuzz.violations=%d)\n" path
    runs ops violations

let () =
  match Array.to_list Sys.argv with
  | [ _; "--same"; a; b ] ->
      if read_file a <> read_file b then fail "%s and %s differ" a b
  | [ _; "--fuzz"; path ] -> check_fuzz path
  | [ _; path ] -> check_stats path
  | _ -> fail "usage: check_stats [--same A B | --fuzz STATS.json | STATS.json]"
