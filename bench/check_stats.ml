(* Schema check for the bench driver's telemetry outputs.

     check_stats.exe STATS.json           assert the stats document
                                          parses and carries the keys
                                          the perf trajectory reads
     check_stats.exe --same A B           assert byte equality (the
                                          --jobs determinism check)
     check_stats.exe --fuzz STATS.json    assert the fuzz.* counters a
                                          `nvml fuzz --stats` run must
                                          produce
     check_stats.exe --media STATS.json   assert the media.* counters a
                                          `nvml scrub --stats` run must
                                          produce
     check_stats.exe --latency M.json     assert a `--metrics-json`
                                          document carries well-formed
                                          <prefix>.latency.* percentile
                                          ladders and tail attribution
     check_stats.exe --serving M.json     assert a `--metrics-json`
                                          document carries the
                                          serving.<mix>.* throughput,
                                          cache and percentile metrics
                                          for all four serving mixes
     check_stats.exe --persist M.json     assert a `--metrics-json`
                                          document carries the
                                          persist.<structure>.<model>.*
                                          drain-traffic metrics for the
                                          full model spectrum, and that
                                          the contract oracle's loss
                                          sweep saw zero mispredictions
     check_stats.exe --bench BENCH.json   assert the perf-trajectory
                                          document (BENCH_<n>.json) is
                                          well-formed; with
                                          --baseline BASE.json
                                          [--max-regress F] additionally
                                          fail if fast-mode wall-clock,
                                          any per-experiment ops/sec,
                                          any per-experiment latency
                                          percentile (p50/p99/p999), or
                                          any epoch-mode cycle-savings
                                          fraction regressed by more
                                          than F (default 1.2, i.e.
                                          +20%) *)

module Json = Nvml_telemetry.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline m;
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_stats path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  List.iter
    (fun key ->
      match Json.path [ "derived"; key ] doc with
      | Some (Json.Float _ | Json.Int _) -> ()
      | Some _ -> fail "%s: derived.%s is not a number" path key
      | None -> fail "%s: missing derived.%s" path key)
    [ "valb.hit_rate"; "polb.hit_rate"; "check_sites.dynamic_fraction" ];
  (match Json.member "counters" doc with
  | Some (Json.Obj (_ :: _)) -> ()
  | _ -> fail "%s: missing or empty counters object" path);
  Printf.printf "%s: ok\n" path

let check_fuzz path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  let counter key =
    match Json.path [ "counters"; key ] doc with
    | Some (Json.Int n) -> n
    | Some _ -> fail "%s: counters.%s is not an integer" path key
    | None -> fail "%s: missing counters.%s" path key
  in
  let runs = counter "fuzz.runs" in
  let ops = counter "fuzz.ops" in
  if runs <= 0 then fail "%s: fuzz.runs is %d, expected > 0" path runs;
  if ops <= 0 then fail "%s: fuzz.ops is %d, expected > 0" path ops;
  let violations = counter "fuzz.violations" in
  if violations < 0 then fail "%s: negative fuzz.violations" path;
  ignore (counter "fuzz.shrink_replays");
  Printf.printf "%s: ok (fuzz.runs=%d fuzz.ops=%d fuzz.violations=%d)\n" path
    runs ops violations

let check_media path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  let counter key =
    match Json.path [ "counters"; key ] doc with
    | Some (Json.Int n) -> n
    | Some _ -> fail "%s: counters.%s is not an integer" path key
    | None -> fail "%s: missing counters.%s" path key
  in
  let runs = counter "media.scrub.runs" in
  let pools = counter "media.scrub.pools" in
  if runs <= 0 then fail "%s: media.scrub.runs is %d, expected > 0" path runs;
  if pools <= 0 then fail "%s: media.scrub.pools is %d, expected > 0" path pools;
  let detected = counter "media.scrub.detected" in
  let repaired = counter "media.scrub.repaired" in
  if repaired > detected then
    fail "%s: media.scrub.repaired (%d) exceeds detected (%d)" path repaired
      detected;
  List.iter
    (fun key -> if counter key < 0 then fail "%s: negative %s" path key)
    [
      "media.scrub.unrepairable"; "media.scrub.lost_objects";
      "media.read.flips"; "media.read.poisons"; "media.read.transient_faults";
      "media.read.retries"; "media.healed_words"; "media.seals";
      "media.writes_refused"; "media.attach.verified"; "media.attach.dirty";
      "media.attach.degraded";
    ];
  Printf.printf
    "%s: ok (media.scrub.runs=%d pools=%d detected=%d repaired=%d)\n" path runs
    pools detected repaired

let parse_doc path =
  match Json.of_string (read_file path) with
  | Ok doc -> doc
  | Error msg -> fail "%s: invalid JSON: %s" path msg

let number = function
  | Some (Json.Int n) -> Some (float_of_int n)
  | Some (Json.Float f) -> Some f
  | _ -> None

(* Assert the latency-percentile groups a `--metrics-json` document from
   a latency-instrumented run must carry: for every <prefix>.latency.p50
   metric, the full percentile ladder exists and is monotone, and the
   per-component tail-attribution fractions are sane (each in [0,1],
   summing to ~1 — or all zero when the recorder saw no cycles, which
   fast functional mode produces for the non-base components). *)
let check_latency path =
  let doc = parse_doc path in
  let metrics =
    match Json.member "metrics" doc with
    | Some (Json.Obj kvs) -> kvs
    | _ -> fail "%s: missing metrics object" path
  in
  let lookup name =
    match List.assoc_opt name metrics with
    | Some j -> number (Some j)
    | None -> None
  in
  let suffix = ".latency.p50" in
  let prefixes =
    List.filter_map
      (fun (k, _) ->
        let lk = String.length k and ls = String.length suffix in
        if lk > ls && String.sub k (lk - ls) ls = suffix then
          Some (String.sub k 0 (lk - ls))
        else None)
      metrics
  in
  if prefixes = [] then fail "%s: no <prefix>.latency.p50 metrics found" path;
  List.iter
    (fun prefix ->
      let pct name =
        match lookup (prefix ^ ".latency." ^ name) with
        | Some f when f >= 0.0 -> f
        | Some _ -> fail "%s: %s.latency.%s is negative" path prefix name
        | None -> fail "%s: missing %s.latency.%s" path prefix name
      in
      let p50 = pct "p50" and p90 = pct "p90" and p99 = pct "p99" in
      let p999 = pct "p999" and pmax = pct "max" in
      if not (p50 <= p90 && p90 <= p99 && p99 <= p999 && p999 <= pmax) then
        fail "%s: %s percentiles not monotone (p50=%g p90=%g p99=%g p999=%g \
              max=%g)"
          path prefix p50 p90 p99 p999 pmax;
      let tail_sum =
        List.fold_left
          (fun acc name ->
            match lookup (prefix ^ ".latency.tail." ^ name) with
            | Some f when f >= 0.0 && f <= 1.0 -> acc +. f
            | Some f ->
                fail "%s: %s.latency.tail.%s=%g outside [0,1]" path prefix
                  name f
            | None -> fail "%s: missing %s.latency.tail.%s" path prefix name)
          0.0
          [ "base"; "check"; "translation"; "stall"; "media" ]
      in
      if tail_sum > 0.0 && Float.abs (tail_sum -. 1.0) > 1e-3 then
        fail "%s: %s tail fractions sum to %g, expected ~1" path prefix
          tail_sum)
    prefixes;
  Printf.printf "%s: ok (%d latency groups: %s)\n" path (List.length prefixes)
    (String.concat " " prefixes)

(* Assert the serving.<mix>.* metric groups a `--metrics-json` document
   from a serving run must carry: all four mixes present, each with a
   positive request count and simulated throughput, a hit rate in
   [0,1], and a monotone p50 <= p99 <= p999 percentile ladder. *)
let check_serving path =
  let doc = parse_doc path in
  let metrics =
    match Json.member "metrics" doc with
    | Some (Json.Obj kvs) -> kvs
    | _ -> fail "%s: missing metrics object" path
  in
  let lookup name = number (List.assoc_opt name metrics) in
  let mixes = [ "read-latest"; "scan-heavy"; "rmw-heavy"; "hot-storm" ] in
  List.iter
    (fun mix ->
      let get key =
        match lookup (Printf.sprintf "serving.%s.%s" mix key) with
        | Some f -> f
        | None -> fail "%s: missing serving.%s.%s" path mix key
      in
      if get "ops" <= 0.0 then fail "%s: serving.%s.ops not positive" path mix;
      if get "ops_per_s" <= 0.0 then
        fail "%s: serving.%s.ops_per_s not positive" path mix;
      if get "shards" < 1.0 then fail "%s: serving.%s.shards < 1" path mix;
      let hit = get "cache.hit_rate" in
      if hit < 0.0 || hit > 1.0 then
        fail "%s: serving.%s.cache.hit_rate=%g outside [0,1]" path mix hit;
      if get "cache.writebacks" < 0.0 then
        fail "%s: serving.%s.cache.writebacks negative" path mix;
      let p50 = get "latency.p50" and p99 = get "latency.p99" in
      let p999 = get "latency.p999" in
      if not (p50 <= p99 && p99 <= p999) then
        fail "%s: serving.%s percentiles not monotone (p50=%g p99=%g p999=%g)"
          path mix p50 p99 p999)
    mixes;
  Printf.printf "%s: ok (%d serving mixes)\n" path (List.length mixes)

(* Assert the conc.* metric groups a `--metrics-json` document from the
   `concurrent` bench experiment must carry: at least one conc.c<N>
   contention group whose contended run actually contended (coherence
   invalidations and FliT flush elisions both observed), and a
   durability sweep with crash points and zero violations. *)
let check_conc path =
  let doc = parse_doc path in
  let metrics =
    match Json.member "metrics" doc with
    | Some (Json.Obj kvs) -> kvs
    | _ -> fail "%s: missing metrics object" path
  in
  let lookup name = number (List.assoc_opt name metrics) in
  let suffix = ".coherence_invalidations" in
  let prefixes =
    List.filter_map
      (fun (k, _) ->
        let lk = String.length k and ls = String.length suffix in
        if
          lk > ls
          && String.sub k (lk - ls) ls = suffix
          && String.length k > 6
          && String.sub k 0 6 = "conc.c"
        then Some (String.sub k 0 (lk - ls))
        else None)
      metrics
  in
  if prefixes = [] then
    fail "%s: no conc.c<N>.coherence_invalidations metrics found" path;
  List.iter
    (fun prefix ->
      let get key =
        match lookup (prefix ^ "." ^ key) with
        | Some f when f >= 0.0 -> f
        | Some _ -> fail "%s: %s.%s is negative" path prefix key
        | None -> fail "%s: missing %s.%s" path prefix key
      in
      if get "steps" <= 0.0 then fail "%s: %s.steps not positive" path prefix;
      if get "contended_steps" <= 0.0 then
        fail "%s: %s.contended_steps not positive" path prefix;
      if get "switches" <= 0.0 then
        fail "%s: %s.switches not positive" path prefix;
      if get "coherence_invalidations" <= 0.0 then
        fail "%s: %s.coherence_invalidations not positive" path prefix;
      if get "flit.flushes_elided" <= 0.0 then
        fail "%s: %s.flit.flushes_elided not positive" path prefix;
      ignore (get "flit.flushes_issued");
      if get "flit.writer_flushes" <= 0.0 then
        fail "%s: %s.flit.writer_flushes not positive" path prefix;
      if get "cycles.core0" <= 0.0 then
        fail "%s: %s.cycles.core0 not positive" path prefix)
    prefixes;
  let fi key =
    match lookup ("conc.fi." ^ key) with
    | Some f -> f
    | None -> fail "%s: missing conc.fi.%s" path key
  in
  if fi "events" <= 0.0 then fail "%s: conc.fi.events not positive" path;
  if fi "points" <= 0.0 then fail "%s: conc.fi.points not positive" path;
  if fi "violations" <> 0.0 then
    fail "%s: conc.fi.violations is %g, expected 0" path (fi "violations");
  Printf.printf "%s: ok (%d contention groups: %s)\n" path
    (List.length prefixes)
    (String.concat " " prefixes)

(* Assert the persist.* metric groups a `--metrics-json` document from
   the `persist` bench experiment must carry: every structure x model
   cell of the retention spectrum, eager with zero drain traffic (it
   persists in place), every relaxed model actually draining, wider
   epochs saving cycles over the per-op flush+fence baseline (epoch:1),
   a loss-exposure sweep per model, and — the contract gate — zero
   oracle mispredictions across every sweep. *)
let check_persist path =
  let doc = parse_doc path in
  let metrics =
    match Json.member "metrics" doc with
    | Some (Json.Obj kvs) -> kvs
    | _ -> fail "%s: missing metrics object" path
  in
  let get name =
    match number (List.assoc_opt name metrics) with
    | Some f -> f
    | None -> fail "%s: missing persist metric %s" path name
  in
  let structures = [ "RB"; "Hash" ] in
  let models = [ "eager"; "epoch_1"; "epoch_8"; "epoch_64"; "lazy" ] in
  let relaxed = [ "epoch_8"; "epoch_64"; "lazy" ] in
  List.iter
    (fun s ->
      List.iter
        (fun m ->
          let prefix = Printf.sprintf "persist.%s.%s" s m in
          let g key = get (prefix ^ "." ^ key) in
          if g "run_cycles" <= 0.0 then
            fail "%s: %s.run_cycles is not positive" path prefix;
          List.iter
            (fun key ->
              if g key < 0.0 then fail "%s: negative %s.%s" path prefix key)
            [ "drains"; "flushes"; "fences"; "buffered" ];
          if m = "eager" then
            List.iter
              (fun key ->
                if g key <> 0.0 then
                  fail
                    "%s: %s.%s is %g, expected 0 (eager persists in place, \
                     no drain traffic)"
                    path prefix key (g key))
              [ "drains"; "flushes"; "fences"; "buffered" ]
          else begin
            if g "drains" <= 0.0 then
              fail "%s: %s.drains is not positive" path prefix;
            if g "flushes" <= 0.0 then
              fail "%s: %s.flushes is not positive" path prefix;
            if g "fences" < g "drains" then
              fail "%s: %s.fences (%g) below drains (%g)" path prefix
                (g "fences") (g "drains")
          end;
          if List.mem m relaxed then begin
            let sv = g "savings_vs_epoch1" in
            if sv <= 0.0 then
              fail
                "%s: %s.savings_vs_epoch1 is %g, expected > 0 (wider epochs \
                 must beat the per-op flush+fence baseline)"
                path prefix sv
          end)
        models)
    structures;
  List.iter
    (fun m ->
      let prefix = "persist.fi." ^ m in
      let g key = get (prefix ^ "." ^ key) in
      if g "points" <= 0.0 then
        fail "%s: %s.points is not positive" path prefix;
      if g "suffix_lost" < 0.0 || g "max_ops_lost" < 0.0 then
        fail "%s: negative loss count under %s" path prefix;
      if m = "eager" && g "suffix_lost" <> 0.0 then
        fail
          "%s: %s.suffix_lost is %g, but eager may never lose a committed op"
          path prefix (g "suffix_lost");
      if (m = "epoch_64" || m = "lazy") && g "suffix_lost" <= 0.0 then
        fail
          "%s: %s.suffix_lost is 0 — the exposure axis was not exercised"
          path prefix;
      if g "violations" <> 0.0 then
        fail "%s: %s.violations is %g, expected 0" path prefix
          (g "violations"))
    models;
  let mispredictions = get "persist.mispredictions" in
  if mispredictions <> 0.0 then
    fail "%s: persist.mispredictions is %g, expected 0" path mispredictions;
  Printf.printf
    "%s: ok (%d persist cells, %d loss sweeps, mispredictions=0)\n" path
    (List.length structures * List.length models)
    (List.length models)

(* The persist.*.savings_vs_epoch1 metrics inside a document's optional
   "metrics" object — the epoch-mode cycle-savings fractions the
   --baseline comparison floors. *)
let persist_savings doc =
  let metrics =
    match Json.member "metrics" doc with
    | Some (Json.Obj kvs) -> kvs
    | _ -> []
  in
  let suffix = ".savings_vs_epoch1" in
  List.filter_map
    (fun (k, v) ->
      let lk = String.length k and ls = String.length suffix in
      if
        lk > ls
        && String.sub k (lk - ls) ls = suffix
        && String.length k > 8
        && String.sub k 0 8 = "persist."
      then Option.map (fun f -> (k, f)) (number (Some v))
      else None)
    metrics

(* The percentile ladder inside a BENCH experiment entry's "latency"
   object, as written by the driver from the merged per-experiment
   recorder. *)
let latency_percentiles path name e =
  match Json.member "latency" e with
  | None -> None
  | Some lat ->
      let get key =
        match number (Json.member key lat) with
        | Some f when f >= 0.0 -> f
        | Some _ -> fail "%s: %s: latency.%s is negative" path name key
        | None -> fail "%s: %s: missing numeric latency.%s" path name key
      in
      let p50 = get "p50" and p90 = get "p90" and p99 = get "p99" in
      let p999 = get "p999" and pmax = get "max" in
      if get "count" <= 0.0 then
        fail "%s: %s: latency.count is not positive" path name;
      if not (p50 <= p90 && p90 <= p99 && p99 <= p999 && p999 <= pmax) then
        fail "%s: %s: latency percentiles not monotone" path name;
      Some (p50, p99, p999)

(* Baseline-side variant: a baseline document may predate the latency
   instrumentation or carry a partial ladder from an older driver — that
   must soften the comparison (skip with a note), never fail it.  Only
   the document under test is held to the full schema. *)
let latency_percentiles_lenient e =
  match Json.member "latency" e with
  | None -> None
  | Some lat -> (
      let get key =
        match number (Json.member key lat) with
        | Some f when f >= 0.0 -> Some f
        | _ -> None
      in
      match (get "p50", get "p99", get "p999", get "count") with
      | Some p50, Some p99, Some p999, Some count when count > 0.0 ->
          Some (p50, p99, p999)
      | _ -> None)

let check_bench ?baseline ?(max_regress = 1.2) path =
  let doc = parse_doc path in
  (match Json.member "kind" doc with
  | Some (Json.String "bench-trajectory") -> ()
  | _ -> fail "%s: kind is not \"bench-trajectory\"" path);
  let num keys =
    match number (Json.path keys doc) with
    | Some f -> f
    | None -> fail "%s: missing numeric %s" path (String.concat "." keys)
  in
  let suite = num [ "suite_wall_s" ] in
  if suite <= 0.0 then fail "%s: suite_wall_s is not positive" path;
  let fast = num [ "mode_breakdown"; "fast_wall_s" ] in
  let cycle = num [ "mode_breakdown"; "cycle_wall_s" ] in
  let other = num [ "mode_breakdown"; "other_wall_s" ] in
  if fast < 0.0 || cycle < 0.0 || other < 0.0 then
    fail "%s: negative mode breakdown entry" path;
  if fast +. cycle +. other > suite *. 1.05 +. 0.05 then
    fail "%s: mode breakdown (%.3f) exceeds suite_wall_s (%.3f)" path
      (fast +. cycle +. other) suite;
  let experiments =
    match Json.member "experiments" doc with
    | Some (Json.List (_ :: _ as exps)) ->
        List.map
          (fun e ->
            let name =
              match Json.member "name" e with
              | Some (Json.String s) -> s
              | _ -> fail "%s: experiment entry without a name" path
            in
            (match Json.member "mode" e with
            | Some (Json.String ("fast" | "cycle" | "other")) -> ()
            | _ -> fail "%s: %s: bad mode (want fast|cycle|other)" path name);
            List.iter
              (fun key ->
                match number (Json.member key e) with
                | Some f when f >= 0.0 -> ()
                | Some _ -> fail "%s: %s: negative %s" path name key
                | None -> fail "%s: %s: missing numeric %s" path name key)
              [ "wall_s"; "ops"; "ops_per_s" ];
            let ops_per_s =
              match number (Json.member "ops_per_s" e) with
              | Some f -> f
              | None -> 0.0
            in
            let wall =
              match number (Json.member "wall_s" e) with
              | Some f -> f
              | None -> 0.0
            in
            (name, ops_per_s, wall, latency_percentiles path name e))
          exps
    | _ -> fail "%s: missing or empty experiments list" path
  in
  let latencies =
    List.filter_map
      (fun (name, _, _, lat) -> Option.map (fun p -> (name, p)) lat)
      experiments
  in
  (* Epoch-mode cycle savings: when the document carries the persist
     experiment's metrics, each savings fraction must be positive —
     a relaxed model that stopped beating the per-op flush+fence
     baseline is a drain-engine regression regardless of wall-clock. *)
  let savings = persist_savings doc in
  List.iter
    (fun (key, f) ->
      if f <= 0.0 then
        fail "%s: %s is %g, expected > 0 (epoch-mode savings floor)" path key
          f)
    savings;
  (match baseline with
  | None -> ()
  | Some base_path ->
      let base = parse_doc base_path in
      (* A baseline written by an older driver may predate whole
         sections (BENCH_6/7 carry no serving or latency data, earlier
         documents no mode breakdown).  Those comparisons are skipped
         with a note — a stale baseline must never turn into a hard
         schema error on the document under test. *)
      (match number (Json.path [ "mode_breakdown"; "fast_wall_s" ] base) with
      | None ->
          Printf.printf
            "%s: baseline predates mode_breakdown; fast-wall check skipped\n"
            base_path
      | Some base_fast ->
          if base_fast > 0.0 && fast > base_fast *. max_regress then
            fail
              "%s: fast-mode wall-clock regressed: %.3fs > %.3fs (baseline \
               %.3fs x %.2f)"
              path fast (base_fast *. max_regress) base_fast max_regress;
          Printf.printf
            "%s: fast-mode wall %.3fs within %.2fx of baseline %.3fs\n" path
            fast max_regress base_fast);
      (* Per-experiment throughput floors: a serving-path regression in
         one experiment must not hide inside an overall-faster suite,
         so each experiment's ops/sec is checked against its own
         baseline entry (ops/sec is higher-better, hence the division).
         Skipped per-experiment when the baseline has no entry or a
         zero rate. *)
      let base_rates =
        match Json.member "experiments" base with
        | Some (Json.List exps) ->
            List.filter_map
              (fun e ->
                match
                  ( Json.member "name" e,
                    number (Json.member "ops_per_s" e),
                    number (Json.member "wall_s" e) )
                with
                | Some (Json.String name), Some rate, Some wall ->
                    Some (name, (rate, wall))
                | _ -> None)
              exps
        | _ -> []
      in
      (* An experiment that finishes in a few milliseconds has an
         ops/sec dominated by timer resolution, not by the code under
         test — a 1ms-vs-3ms flap reads as a 3x "regression".  Both
         runs must clear the noise floor for the ratio to mean
         anything. *)
      let wall_noise_floor = 0.05 in
      let rate_checked = ref 0 and rate_noisy = ref 0 in
      List.iter
        (fun (name, ops_per_s, wall, _) ->
          match List.assoc_opt name base_rates with
          | Some (base_rate, base_wall) when base_rate > 0.0 && ops_per_s > 0.0
            ->
              if wall < wall_noise_floor || base_wall < wall_noise_floor then
                incr rate_noisy
              else begin
                incr rate_checked;
                if ops_per_s < base_rate /. max_regress then
                  fail
                    "%s: %s: ops/sec regressed: %.0f < %.0f (baseline %.0f / \
                     %.2f)"
                    path name ops_per_s (base_rate /. max_regress) base_rate
                    max_regress
              end
          | _ -> ())
        experiments;
      if !rate_checked > 0 then
        Printf.printf
          "%s: throughput floors ok (%d experiments within %.2fx of \
           baseline%s)\n"
          path !rate_checked max_regress
          (if !rate_noisy > 0 then
             Printf.sprintf "; %d below the %.0fms noise floor skipped"
               !rate_noisy (wall_noise_floor *. 1000.)
           else "");
      (* Per-percentile latency budgets: cycle-domain percentiles are
         deterministic, so any increase is a real per-op latency
         regression, not measurement noise — the budget factor bounds
         the worst acceptable drift.  Skipped per-experiment when the
         baseline predates latency instrumentation. *)
      let lat_skipped = ref 0 in
      let base_lats =
        match Json.member "experiments" base with
        | Some (Json.List exps) ->
            List.filter_map
              (fun e ->
                match Json.member "name" e with
                | Some (Json.String name) -> (
                    match latency_percentiles_lenient e with
                    | Some p -> Some (name, p)
                    | None ->
                        if Json.member "latency" e <> None then
                          incr lat_skipped;
                        None)
                | _ -> None)
              exps
        | _ -> []
      in
      if !lat_skipped > 0 then
        Printf.printf
          "%s: %d baseline latency entries predate the full percentile \
           ladder; their budgets skipped\n"
          base_path !lat_skipped;
      let checked = ref 0 in
      List.iter
        (fun (name, (p50, p99, p999)) ->
          match List.assoc_opt name base_lats with
          | None -> ()
          | Some (b50, b99, b999) ->
              incr checked;
              List.iter
                (fun (pct, cur, base) ->
                  if base > 0.0 && cur > base *. max_regress then
                    fail
                      "%s: %s: latency.%s regressed: %.0f > %.0f cycles \
                       (baseline %.0f x %.2f)"
                      path name pct cur (base *. max_regress) base max_regress)
                [ ("p50", p50, b50); ("p99", p99, b99); ("p999", p999, b999) ])
        latencies;
      if !checked > 0 then
        Printf.printf
          "%s: latency budgets ok (%d experiments within %.2fx of baseline)\n"
          path !checked max_regress
      else if latencies <> [] && base_lats = [] then
        Printf.printf
          "%s: baseline carries no latency data; latency budgets skipped\n"
          base_path;
      (* Epoch-mode savings floors against the baseline: the fractions
         are cycle-domain deterministic, so any drop beyond the budget
         factor is a real coalescing regression.  Skipped (with a note)
         when the baseline predates the persist experiment. *)
      let base_savings = persist_savings base in
      let sav_checked = ref 0 in
      List.iter
        (fun (key, f) ->
          match List.assoc_opt key base_savings with
          | Some base_f when base_f > 0.0 ->
              incr sav_checked;
              if f < base_f /. max_regress then
                fail
                  "%s: %s regressed: %.4f < %.4f (baseline %.4f / %.2f)" path
                  key f (base_f /. max_regress) base_f max_regress
          | _ -> ())
        savings;
      if !sav_checked > 0 then
        Printf.printf
          "%s: epoch-mode savings floors ok (%d cells within %.2fx of \
           baseline)\n"
          path !sav_checked max_regress
      else if savings <> [] && base_savings = [] then
        Printf.printf
          "%s: baseline predates persist savings; savings floors skipped\n"
          base_path);
  Printf.printf "%s: ok (suite %.3fs; fast %.3fs, cycle %.3fs, other %.3fs)\n"
    path suite fast cycle other

let () =
  match Array.to_list Sys.argv with
  | [ _; "--same"; a; b ] ->
      if read_file a <> read_file b then fail "%s and %s differ" a b
  | [ _; "--fuzz"; path ] -> check_fuzz path
  | [ _; "--media"; path ] -> check_media path
  | [ _; "--latency"; path ] -> check_latency path
  | [ _; "--serving"; path ] -> check_serving path
  | [ _; "--conc"; path ] -> check_conc path
  | [ _; "--persist"; path ] -> check_persist path
  | [ _; "--bench"; path ] -> check_bench path
  | [ _; "--bench"; path; "--baseline"; base ] -> check_bench ~baseline:base path
  | [ _; "--bench"; path; "--baseline"; base; "--max-regress"; f ] -> (
      match float_of_string_opt f with
      | Some max_regress when max_regress > 0.0 ->
          check_bench ~baseline:base ~max_regress path
      | _ -> fail "--max-regress expects a positive float, got %S" f)
  | [ _; path ] -> check_stats path
  | _ ->
      fail
        "usage: check_stats [--same A B | --fuzz STATS.json | --media \
         STATS.json | --latency METRICS.json | --serving METRICS.json | \
         --conc METRICS.json | --persist METRICS.json | --bench BENCH.json \
         [--baseline BASE.json [--max-regress F]] | STATS.json]"
