(* Schema check for the bench driver's telemetry outputs.

     check_stats.exe STATS.json           assert the stats document
                                          parses and carries the keys
                                          the perf trajectory reads
     check_stats.exe --same A B           assert byte equality (the
                                          --jobs determinism check)
     check_stats.exe --fuzz STATS.json    assert the fuzz.* counters a
                                          `nvml fuzz --stats` run must
                                          produce
     check_stats.exe --media STATS.json   assert the media.* counters a
                                          `nvml scrub --stats` run must
                                          produce *)

module Json = Nvml_telemetry.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline m;
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_stats path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  List.iter
    (fun key ->
      match Json.path [ "derived"; key ] doc with
      | Some (Json.Float _ | Json.Int _) -> ()
      | Some _ -> fail "%s: derived.%s is not a number" path key
      | None -> fail "%s: missing derived.%s" path key)
    [ "valb.hit_rate"; "polb.hit_rate"; "check_sites.dynamic_fraction" ];
  (match Json.member "counters" doc with
  | Some (Json.Obj (_ :: _)) -> ()
  | _ -> fail "%s: missing or empty counters object" path);
  Printf.printf "%s: ok\n" path

let check_fuzz path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  let counter key =
    match Json.path [ "counters"; key ] doc with
    | Some (Json.Int n) -> n
    | Some _ -> fail "%s: counters.%s is not an integer" path key
    | None -> fail "%s: missing counters.%s" path key
  in
  let runs = counter "fuzz.runs" in
  let ops = counter "fuzz.ops" in
  if runs <= 0 then fail "%s: fuzz.runs is %d, expected > 0" path runs;
  if ops <= 0 then fail "%s: fuzz.ops is %d, expected > 0" path ops;
  let violations = counter "fuzz.violations" in
  if violations < 0 then fail "%s: negative fuzz.violations" path;
  ignore (counter "fuzz.shrink_replays");
  Printf.printf "%s: ok (fuzz.runs=%d fuzz.ops=%d fuzz.violations=%d)\n" path
    runs ops violations

let check_media path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  let counter key =
    match Json.path [ "counters"; key ] doc with
    | Some (Json.Int n) -> n
    | Some _ -> fail "%s: counters.%s is not an integer" path key
    | None -> fail "%s: missing counters.%s" path key
  in
  let runs = counter "media.scrub.runs" in
  let pools = counter "media.scrub.pools" in
  if runs <= 0 then fail "%s: media.scrub.runs is %d, expected > 0" path runs;
  if pools <= 0 then fail "%s: media.scrub.pools is %d, expected > 0" path pools;
  let detected = counter "media.scrub.detected" in
  let repaired = counter "media.scrub.repaired" in
  if repaired > detected then
    fail "%s: media.scrub.repaired (%d) exceeds detected (%d)" path repaired
      detected;
  List.iter
    (fun key -> if counter key < 0 then fail "%s: negative %s" path key)
    [
      "media.scrub.unrepairable"; "media.scrub.lost_objects";
      "media.read.flips"; "media.read.poisons"; "media.read.transient_faults";
      "media.read.retries"; "media.healed_words"; "media.seals";
      "media.writes_refused"; "media.attach.verified"; "media.attach.dirty";
      "media.attach.degraded";
    ];
  Printf.printf
    "%s: ok (media.scrub.runs=%d pools=%d detected=%d repaired=%d)\n" path runs
    pools detected repaired

let () =
  match Array.to_list Sys.argv with
  | [ _; "--same"; a; b ] ->
      if read_file a <> read_file b then fail "%s and %s differ" a b
  | [ _; "--fuzz"; path ] -> check_fuzz path
  | [ _; "--media"; path ] -> check_media path
  | [ _; path ] -> check_stats path
  | _ ->
      fail
        "usage: check_stats [--same A B | --fuzz STATS.json | --media \
         STATS.json | STATS.json]"
